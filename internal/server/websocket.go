// Minimal RFC 6455 WebSocket server transport for /subscribe/ws, built
// entirely on the standard library (the repo takes no external
// dependencies): the opening handshake (Sec-WebSocket-Accept via SHA-1 +
// the protocol GUID), unfragmented text/binary frames, and ping/pong and
// close control frames. Deliveries go out as text frames carrying the
// same JSON payload as the SSE transport; client frames are consumed
// only to answer pings and detect disconnect.

package server

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// websocketGUID is the fixed key-accept salt from RFC 6455 §1.3.
const websocketGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// WebSocket opcodes (RFC 6455 §5.2).
const (
	opText  byte = 0x1
	opClose byte = 0x8
	opPing  byte = 0x9
	opPong  byte = 0xA
)

// maxFramePayload bounds inbound client frames; subscription clients
// send only control frames and tiny messages.
const maxFramePayload = 1 << 20

// wsAccept computes the Sec-WebSocket-Accept token for a client key.
func wsAccept(key string) string {
	h := sha1.Sum([]byte(key + websocketGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// wsConn serializes frame writes to a hijacked connection: the delivery
// loop and the pong-answering read loop share it.
type wsConn struct {
	c  net.Conn
	mu sync.Mutex
	w  *bufio.Writer
	// writeTimeout bounds each frame write (0 = none): a stalled
	// client's backpressure becomes a write error, not a pinned goroutine.
	writeTimeout time.Duration
}

// writeFrame writes one unfragmented, unmasked frame (servers never mask).
func (ws *wsConn) writeFrame(opcode byte, payload []byte) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.writeTimeout > 0 {
		_ = ws.c.SetWriteDeadline(time.Now().Add(ws.writeTimeout))
	}
	var hdr [10]byte
	hdr[0] = 0x80 | opcode // FIN + opcode
	n := len(payload)
	switch {
	case n < 126:
		hdr[1] = byte(n)
		if _, err := ws.w.Write(hdr[:2]); err != nil {
			return err
		}
	case n < 1<<16:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(n))
		if _, err := ws.w.Write(hdr[:4]); err != nil {
			return err
		}
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(n))
		if _, err := ws.w.Write(hdr[:10]); err != nil {
			return err
		}
	}
	if _, err := ws.w.Write(payload); err != nil {
		return err
	}
	return ws.w.Flush()
}

// readFrame reads one frame, unmasking the payload when the client set
// the mask bit (clients must; we tolerate either for test harnesses).
func readFrame(r *bufio.Reader) (opcode byte, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	opcode = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(r, ext[:]); err != nil {
			return 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(r, ext[:]); err != nil {
			return 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > maxFramePayload {
		return 0, nil, fmt.Errorf("websocket: frame of %d bytes exceeds limit", length)
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(r, mask[:]); err != nil {
			return 0, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i&3]
		}
	}
	return opcode, payload, nil
}

// handleSubscribeWS upgrades the connection and streams deliveries as
// JSON text frames until the client disconnects or closes.
func (s *Server) handleSubscribeWS(w http.ResponseWriter, r *http.Request) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "websocket upgrade required", http.StatusBadRequest)
		return
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return
	}
	sub, ok := s.openSubscription(w, r)
	if !ok {
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		sub.Close()
		http.Error(w, "connection cannot be hijacked", http.StatusInternalServerError)
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		sub.Close()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer conn.Close()
	defer sub.Close()

	ws := &wsConn{c: conn, w: buf.Writer, writeTimeout: s.StreamWriteTimeout}
	handshake := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAccept(key) + "\r\n\r\n"
	if _, err := buf.WriteString(handshake); err != nil {
		return
	}
	if err := buf.Flush(); err != nil {
		return
	}

	// Read loop: answer pings, stop on close or error. Closing the
	// subscription unblocks the delivery loop below.
	go func() {
		defer sub.Close()
		for {
			op, payload, err := readFrame(buf.Reader)
			if err != nil {
				return
			}
			switch op {
			case opPing:
				if ws.writeFrame(opPong, payload) != nil {
					return
				}
			case opClose:
				_ = ws.writeFrame(opClose, nil)
				return
			}
		}
	}()

	for {
		d, ok := sub.Recv()
		if !ok {
			_ = ws.writeFrame(opClose, nil)
			return
		}
		payload, err := json.Marshal(toWireDelivery(d))
		if err != nil {
			return
		}
		if err := ws.writeFrame(opText, payload); err != nil {
			return
		}
	}
}
