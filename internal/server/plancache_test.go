package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// postQuery posts one /query body and returns the status and decoded
// JSON (when the handler answered 200).
func postQuery(t *testing.T, url, src, rawQuery string) (int, map[string]interface{}) {
	t.Helper()
	body := fmt.Sprintf(`{"query": %q}`, src)
	resp, err := http.Post(url+"/query"+rawQuery, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestExplainEndpoint: explain=1 returns the physical plan without
// executing, and malformed explain values are client errors.
func TestExplainEndpoint(t *testing.T) {
	_, client, done := testService(t)
	defer done()
	url := strings.TrimSuffix(client.BaseURL, "/")

	code, plan := postQuery(t, url, "SELECT entity, value FROM position WHERE value != 'x' and badge(entity) = 1", "?explain=1")
	if code != http.StatusOK {
		t.Fatalf("explain: status %d", code)
	}
	if plan["attribute"] != "position" || plan["temporal"] != "current" {
		t.Fatalf("plan: %v", plan)
	}
	if _, ok := plan["pushed_predicates"]; !ok {
		t.Fatalf("plan missing pushed predicates: %v", plan)
	}
	if plan["residual_predicate"] != "(badge(entity) = 1)" {
		t.Fatalf("plan residual: %v", plan)
	}

	// explain must not be an execution: rows are absent.
	if _, ok := plan["rows"]; ok {
		t.Fatalf("explain executed the query: %v", plan)
	}

	// Malformed explain value → 400, not a silent full execution.
	if code, _ := postQuery(t, url, "SELECT entity FROM position", "?explain=notabool"); code != http.StatusBadRequest {
		t.Fatalf("bad explain: status %d, want 400", code)
	}
	// A parse failure under explain is still a 422.
	if code, _ := postQuery(t, url, "SELEC nope", "?explain=1"); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad query explain: status %d, want 422", code)
	}
}

// TestPlanCacheCounters: repeated queries hit the prepared-plan cache,
// and /stats exposes the miss/hit split.
func TestPlanCacheCounters(t *testing.T) {
	_, client, done := testService(t)
	defer done()

	for i := 0; i < 3; i++ {
		if _, err := client.Query("SELECT entity FROM position"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Query("SELECT value FROM position"); err != nil {
		t.Fatal(err)
	}
	// Parse errors are never cached and never counted as prepared.
	if _, err := client.Query("SELECT FROM"); err == nil {
		t.Fatal("bad query should error")
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["queries_prepared"] != 2 {
		t.Fatalf("queries_prepared = %d, want 2", stats["queries_prepared"])
	}
	if stats["plan_cache_hits"] != 2 {
		t.Fatalf("plan_cache_hits = %d, want 2", stats["plan_cache_hits"])
	}
}

// TestPlanCacheEviction: the cache is bounded LRU — the oldest entry
// falls out, and re-querying it re-prepares.
func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(2)
	if _, err := c.get("SELECT entity FROM a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.get("SELECT entity FROM b"); err != nil {
		t.Fatal(err)
	}
	// Touch a so b becomes the LRU victim.
	if _, err := c.get("SELECT entity FROM a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.get("SELECT entity FROM c"); err != nil {
		t.Fatal(err)
	}
	if c.ll.Len() != 2 || len(c.byKey) != 2 {
		t.Fatalf("cache size %d/%d, want 2", c.ll.Len(), len(c.byKey))
	}
	if _, ok := c.byKey["SELECT entity FROM b"]; ok {
		t.Fatal("LRU victim survived")
	}
	if _, ok := c.byKey["SELECT entity FROM a"]; !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.prepared.Load() != 3 || c.hits.Load() != 1 {
		t.Fatalf("counters: prepared=%d hits=%d, want 3/1", c.prepared.Load(), c.hits.Load())
	}
	// Errors are not cached.
	if _, err := c.get("SELECT FROM"); err == nil {
		t.Fatal("bad query should error")
	}
	if c.ll.Len() != 2 {
		t.Fatalf("error was cached: size %d", c.ll.Len())
	}
}

// TestPlanCacheSharedHandle: two requests for the same source share one
// prepared handle — planning happens once.
func TestPlanCacheSharedHandle(t *testing.T) {
	c := newPlanCache(8)
	p1, err := c.get("SELECT entity FROM position")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.get("SELECT entity FROM position")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("cache returned distinct handles for one source")
	}
}
