// Subscription endpoints: the push half of the interoperability surface.
// GET /subscribe streams deliveries as Server-Sent Events; GET
// /subscribe/ws upgrades to a WebSocket (RFC 6455, implemented on the
// standard library) carrying the same JSON payloads as text frames. Both
// take the subscription filter from query parameters:
//
//	entity, attr     restrict state-change deliveries
//	stream           restricts emitted-element deliveries
//	changes, emitted explicit bool opt-ins (implied by the above)
//	query            a continuous SELECT re-evaluated per watermark
//	queue            per-client send-queue bound (default 256)
//	cursor           last-seen watermark for reconnecting clients
//
// SSE events carry the watermark in the `id:` field, so a reconnecting
// EventSource resumes via the standard Last-Event-ID header; a cursor
// behind the broker's cut yields one `resync` event (a snapshot-pinned
// catch-up at an explicit cut) before deltas resume. Malformed
// parameters are a 400; a failing continuous query is a 400 before the
// stream starts.

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/subscribe"
	"repro/internal/temporal"
)

// wireChange is the JSON encoding of one state transition.
type wireChange struct {
	Kind string   `json:"kind"` // "asserted" or "terminated"
	At   int64    `json:"at"`
	Fact wireFact `json:"fact"`
}

// wireElement is the JSON encoding of one emitted element.
type wireElement struct {
	Stream    string               `json:"stream"`
	Timestamp int64                `json:"timestamp"`
	Fields    map[string]wireValue `json:"fields,omitempty"`
}

// wireDelivery is the JSON payload of one pushed subscription delivery,
// shared by the SSE and WebSocket transports.
type wireDelivery struct {
	Kind      string         `json:"kind"` // "deltas", "resync" or "notice"
	Watermark int64          `json:"watermark"`
	Changes   []wireChange   `json:"changes,omitempty"`
	Emitted   []wireElement  `json:"emitted,omitempty"`
	Result    *queryResponse `json:"result,omitempty"`
	Cut       int64          `json:"cut,omitempty"`
	State     []wireFact     `json:"state,omitempty"`
	// Note carries the payload of a "notice" event: an operational
	// message such as a durability degradation or recovery.
	Note string `json:"note,omitempty"`
}

// toWireFact encodes a fact, reading the belief end through the atomic
// accessor (broker-delivered facts may still be store-owned).
func toWireFact(f *element.Fact) wireFact {
	return wireFact{
		Entity: f.Entity, Attribute: f.Attribute, Value: toWire(f.Value),
		Start: int64(f.Validity.Start), End: int64(f.Validity.End),
		Recorded: int64(f.RecordedAt), Superseded: int64(f.BeliefEnd()),
		Derived: f.Derived, Source: f.Source,
	}
}

func toWireElement(el *element.Element) wireElement {
	we := wireElement{Stream: el.Stream, Timestamp: int64(el.Timestamp)}
	if el.Tuple != nil && el.Tuple.Schema().Len() > 0 {
		we.Fields = make(map[string]wireValue, el.Tuple.Schema().Len())
		for i := 0; i < el.Tuple.Schema().Len(); i++ {
			name := el.Tuple.Schema().Field(i).Name
			if v, ok := el.Get(name); ok {
				we.Fields[name] = toWire(v)
			}
		}
	}
	return we
}

func toWireDelivery(d subscribe.Delivery) wireDelivery {
	wd := wireDelivery{
		Kind:      d.Kind.String(),
		Watermark: int64(d.Watermark),
		Cut:       int64(d.Cut),
		Note:      d.Note,
	}
	for _, ch := range d.Changes {
		kind := "asserted"
		if ch.Kind == state.Terminated {
			kind = "terminated"
		}
		wd.Changes = append(wd.Changes, wireChange{Kind: kind, At: int64(ch.At), Fact: toWireFact(ch.Fact)})
	}
	for _, el := range d.Emitted {
		wd.Emitted = append(wd.Emitted, toWireElement(el))
	}
	if d.Result != nil {
		resp := &queryResponse{Columns: d.Result.Columns}
		for _, row := range d.Result.Rows {
			wr := make([]wireValue, len(row))
			for i, v := range row {
				wr[i] = toWire(v)
			}
			resp.Rows = append(resp.Rows, wr)
		}
		wd.Result = resp
	}
	for _, f := range d.State {
		wd.State = append(wd.State, toWireFact(f))
	}
	return wd
}

// boolParam parses an optional boolean query parameter.
func boolParam(r *http.Request, name string) (bool, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return false, nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, fmt.Errorf("bad %s: %w", name, err)
	}
	return v, nil
}

// subscribeParams builds the subscription filter and options from the
// request. Every parse failure is a client error (400), never a 500.
func subscribeParams(r *http.Request) (subscribe.Filter, []subscribe.SubOption, error) {
	q := r.URL.Query()
	f := subscribe.Filter{
		Entity: q.Get("entity"),
		Attr:   q.Get("attr"),
		Stream: q.Get("stream"),
		Query:  q.Get("query"),
	}
	var err error
	if f.Changes, err = boolParam(r, "changes"); err != nil {
		return f, nil, err
	}
	if f.Emitted, err = boolParam(r, "emitted"); err != nil {
		return f, nil, err
	}
	var opts []subscribe.SubOption
	if raw := q.Get("queue"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return f, nil, fmt.Errorf("bad queue: %q", raw)
		}
		opts = append(opts, subscribe.WithQueueLen(n))
	}
	cursor := q.Get("cursor")
	if cursor == "" {
		// Standard SSE reconnect: the browser resends the last `id:`.
		cursor = r.Header.Get("Last-Event-ID")
	}
	if cursor != "" {
		n, err := strconv.ParseInt(cursor, 10, 64)
		if err != nil {
			return f, nil, fmt.Errorf("bad cursor: %q", cursor)
		}
		opts = append(opts, subscribe.ResumeFrom(temporal.Instant(n)))
	}
	return f, opts, nil
}

// openSubscription validates parameters and registers the subscription,
// writing the appropriate client error on failure.
func (s *Server) openSubscription(w http.ResponseWriter, r *http.Request) (*subscribe.Subscriber, bool) {
	if s.broker == nil {
		http.Error(w, "subscriptions require an engine-backed server (NewForEngine)", http.StatusNotFound)
		return nil, false
	}
	f, opts, err := subscribeParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	sub, err := s.broker.Subscribe(f, opts...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return sub, true
}

// handleSubscribe streams deliveries as Server-Sent Events until the
// client disconnects. Each event is `event: deltas|resync`, `id:` the
// watermark (the reconnect cursor), `data:` the JSON delivery.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	sub, ok := s.openSubscription(w, r)
	if !ok {
		return
	}
	defer sub.Close()
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// Unblock the Recv loop when the client goes away.
	go func() {
		<-r.Context().Done()
		sub.Close()
	}()
	// Per-write deadline: a stalled client's TCP backpressure surfaces
	// as a write error here instead of pinning this goroutine forever.
	// Recorders and other transports without deadline support are fine —
	// SetWriteDeadline then reports ErrNotSupported and is skipped.
	rc := http.NewResponseController(w)
	for {
		d, ok := sub.Recv()
		if !ok {
			return
		}
		payload, err := json.Marshal(toWireDelivery(d))
		if err != nil {
			return
		}
		if s.StreamWriteTimeout > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(s.StreamWriteTimeout))
		}
		if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", d.Kind, int64(d.Watermark), payload); err != nil {
			return
		}
		fl.Flush()
	}
}
