package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/stream"
	"repro/internal/temporal"
)

var sensorSchema = element.NewSchema(
	element.Field{Name: "sensor", Kind: element.KindString},
	element.Field{Name: "celsius", Kind: element.KindFloat},
)

func sensorReading(ts int64, sensor string, celsius float64) stream.Message {
	return stream.ElementMsg(element.New("Reading", temporal.Instant(ts),
		element.NewTuple(sensorSchema, element.String(sensor), element.Float(celsius))))
}

func testEngineService(t *testing.T) (*core.Engine, *Server, *Client, func()) {
	t.Helper()
	e := core.New(core.WithPolicy(core.StateFirst))
	if err := e.DeployRules(`
RULE track ON Reading AS r
THEN REPLACE temperature(r.sensor) = r.celsius

RULE spike ON Reading AS r WHERE r.celsius > 95
THEN EMIT Alert(sensor = r.sensor, celsius = r.celsius)
`); err != nil {
		t.Fatal(err)
	}
	s := NewForEngine(e, nil)
	srv := httptest.NewServer(s)
	return e, s, NewClient(srv.URL), func() { srv.Close(); s.Close() }
}

// waitServerBatches blocks until the server's broker has dispatched n
// watermark batches, settling the asynchronous fan-out.
func waitServerBatches(t *testing.T, s *Server, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		m := s.Broker().Metrics()
		if m.Batches+m.SkippedBatches >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("broker settled only %d of %d batches", s.Broker().Metrics().Batches, n)
}

func TestSubscribeSSE(t *testing.T) {
	e, _, client, done := testEngineService(t)
	defer done()

	sub, err := client.Subscribe(SubscribeOptions{Entity: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	alerts, err := client.Subscribe(SubscribeOptions{Stream: "Alert"})
	if err != nil {
		t.Fatal(err)
	}
	defer alerts.Close()

	if err := e.Run([]stream.Message{
		sensorReading(1, "s1", 20),
		sensorReading(2, "s2", 99),
		stream.WatermarkMsg(10),
	}); err != nil {
		t.Fatal(err)
	}

	ev, err := sub.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "deltas" || ev.Watermark != 10 {
		t.Fatalf("event kind=%s wm=%d, want deltas at 10", ev.Kind, ev.Watermark)
	}
	if len(ev.Changes) != 1 || ev.Changes[0].Fact.Entity != "s1" ||
		ev.Changes[0].Fact.Value.MustFloat() != 20 {
		t.Fatalf("changes over the wire: %+v", ev.Changes)
	}

	ev, err = alerts.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Emitted) != 1 || ev.Emitted[0].Stream != "Alert" ||
		ev.Emitted[0].Fields["sensor"].MustString() != "s2" {
		t.Fatalf("emitted over the wire: %+v", ev.Emitted)
	}

	// Stats now carries the engine-level fields.
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["watermark"] != 10 {
		t.Fatalf("stats watermark = %d, want 10", stats["watermark"])
	}
	if stats["emitted"] != 1 {
		t.Fatalf("stats emitted = %d, want 1", stats["emitted"])
	}
	if stats["subscribers"] != 2 {
		t.Fatalf("stats subscribers = %d, want 2", stats["subscribers"])
	}
}

func TestSubscribeReconnectWithCursor(t *testing.T) {
	e, s, client, done := testEngineService(t)
	defer done()

	sub, err := client.Subscribe(SubscribeOptions{Entity: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run([]stream.Message{sensorReading(1, "s1", 20), stream.WatermarkMsg(10)}); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Recv(); err != nil {
		t.Fatal(err)
	}
	if cur, ok := sub.Cursor(); !ok || cur != 10 {
		t.Fatalf("cursor = %d/%v, want 10", cur, ok)
	}
	sub.Close()

	// The client misses a watermark while disconnected.
	if err := e.Run([]stream.Message{sensorReading(11, "s1", 25), stream.WatermarkMsg(20)}); err != nil {
		t.Fatal(err)
	}
	waitServerBatches(t, s, 2)

	re, err := sub.Resubscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ev, err := re.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "resync" || ev.Cut != 20 {
		t.Fatalf("reconnect first event kind=%s cut=%d, want resync at 20", ev.Kind, ev.Cut)
	}
	if len(ev.State) != 1 || ev.State[0].Value.MustFloat() != 25 {
		t.Fatalf("catch-up state %+v, want temperature(s1)=25", ev.State)
	}

	// Deliveries resume after the cut.
	if err := e.Run([]stream.Message{sensorReading(21, "s1", 30), stream.WatermarkMsg(30)}); err != nil {
		t.Fatal(err)
	}
	ev, err = re.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "deltas" || ev.Watermark != 30 {
		t.Fatalf("post-resync event kind=%s wm=%d, want deltas at 30", ev.Kind, ev.Watermark)
	}
}

func TestSubscribeBadParams(t *testing.T) {
	_, _, client, done := testEngineService(t)
	defer done()

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(client.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, path := range []string{
		"/subscribe?changes=notabool",
		"/subscribe?emitted=2x",
		"/subscribe?queue=zero",
		"/subscribe?queue=0",
		"/subscribe?cursor=abc",
		"/subscribe?query=" + url.QueryEscape("SELECT nonsense FROM"),
		"/subscribe/ws?entity=s1", // no upgrade headers
	} {
		if got := status(path); got != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, got)
		}
	}

	// A store-only server has no broker: subscriptions are a 404, and
	// stats omits the engine fields.
	st := state.NewStore()
	st.Put("ann", "position", element.String("hall"), 10)
	plain := httptest.NewServer(New(st, nil))
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/subscribe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("store-only /subscribe = %d, want 404", resp.StatusCode)
	}
	stats, err := NewClient(plain.URL).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stats["watermark"]; ok {
		t.Fatal("store-only stats should not report a watermark")
	}
}

func TestSubscribeWebSocket(t *testing.T) {
	e, _, client, done := testEngineService(t)
	defer done()

	u, err := url.Parse(client.BaseURL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}

	const key = "dGhlIHNhbXBsZSBub25jZQ=="
	fmt.Fprintf(conn, "GET /subscribe/ws?entity=s1 HTTP/1.1\r\n"+
		"Host: %s\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n"+
		"Sec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n", u.Host, key)

	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "101") {
		t.Fatalf("handshake status %q, want 101", strings.TrimSpace(status))
	}
	var accept string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		if v, ok := strings.CutPrefix(line, "Sec-WebSocket-Accept: "); ok {
			accept = v
		}
	}
	// RFC 6455 §1.3's worked example for the sample nonce.
	if accept != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("Sec-WebSocket-Accept = %q", accept)
	}

	if err := e.Run([]stream.Message{sensorReading(1, "s1", 20), stream.WatermarkMsg(10)}); err != nil {
		t.Fatal(err)
	}
	op, payload, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if op != opText {
		t.Fatalf("frame opcode %#x, want text", op)
	}
	var wd wireDelivery
	if err := json.Unmarshal(payload, &wd); err != nil {
		t.Fatal(err)
	}
	if wd.Kind != "deltas" || wd.Watermark != 10 || len(wd.Changes) != 1 ||
		wd.Changes[0].Fact.Entity != "s1" {
		t.Fatalf("websocket delivery %+v", wd)
	}

	// Masked client close frame; the server answers with a close frame.
	if _, err := conn.Write([]byte{0x88, 0x80, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	op, _, err = readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if op != opClose {
		t.Fatalf("close reply opcode %#x, want close", op)
	}
}
