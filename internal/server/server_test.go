package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/element"
	"repro/internal/reason"
	"repro/internal/state"
	"repro/internal/temporal"
)

func testService(t *testing.T) (*state.Store, *Client, func()) {
	t.Helper()
	st := state.NewStore()
	st.Put("ann", "position", element.String("hall"), 10)
	st.Put("ann", "position", element.String("lab"), 50)
	st.Put("bob", "position", element.String("hall"), 20)
	srv := httptest.NewServer(New(st, nil))
	return st, NewClient(srv.URL), srv.Close
}

func TestQueryEndToEnd(t *testing.T) {
	_, client, done := testService(t)
	defer done()

	res, err := client.Query("SELECT entity, value FROM position ORDER BY entity")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].MustString() != "lab" {
		t.Fatalf("remote query: %v", res.Rows)
	}
	// Historical query across the wire.
	res, err = client.Query("SELECT value FROM position ASOF 30 WHERE entity = 'ann'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "hall" {
		t.Fatalf("remote as-of: %v", res.Rows)
	}
}

func TestQueryErrorsPropagate(t *testing.T) {
	_, client, done := testService(t)
	defer done()
	if _, err := client.Query("SELECT nosuch FROM position"); err == nil {
		t.Fatal("bad query should error")
	} else if !strings.Contains(err.Error(), "422") {
		t.Fatalf("want 422 in error, got %v", err)
	}
}

func TestFactEndpoints(t *testing.T) {
	_, client, done := testService(t)
	defer done()

	f, ok, err := client.Current("ann", "position")
	if err != nil || !ok || f.Value.MustString() != "lab" {
		t.Fatalf("current: %v %v %v", f, ok, err)
	}
	if f.Validity.Start != 50 || !f.Validity.IsOpen() {
		t.Fatalf("validity round trip: %v", f.Validity)
	}
	f, ok, err = client.ValidAt("ann", "position", 30)
	if err != nil || !ok || f.Value.MustString() != "hall" {
		t.Fatalf("valid-at: %v %v %v", f, ok, err)
	}
	_, ok, err = client.Current("zoe", "position")
	if err != nil || ok {
		t.Fatalf("absent: %v %v", ok, err)
	}
}

func TestStats(t *testing.T) {
	_, client, done := testService(t)
	defer done()
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["keys"] != 2 || stats["versions"] != 3 || stats["current"] != 2 {
		t.Fatalf("stats: %v", stats)
	}
}

func TestRemoteStateLookup(t *testing.T) {
	_, client, done := testService(t)
	defer done()
	rs := &RemoteState{Client: client}
	v, ok := rs.Lookup("position", element.String("bob"))
	if !ok || v.MustString() != "hall" {
		t.Fatalf("remote lookup: %v %v", v, ok)
	}
	if _, ok := rs.Lookup("position", element.String("zoe")); ok {
		t.Fatal("absent remote lookup")
	}
}

func TestInferenceOverHTTP(t *testing.T) {
	st := state.NewStore()
	ont := reason.NewOntology()
	if err := ont.SubClassOf("novel", "books"); err != nil {
		t.Fatal(err)
	}
	r := reason.NewReasoner(st, ont)
	st.Put("p1", "type", element.String("novel"), 0)
	srv := httptest.NewServer(New(st, r))
	defer srv.Close()
	client := NewClient(srv.URL)
	res, err := client.Query("SELECT entity FROM type WHERE value = 'books' WITH INFERENCE")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "p1" {
		t.Fatalf("remote inference: %v", res.Rows)
	}
}

func TestBadRequests(t *testing.T) {
	st := state.NewStore()
	srv := httptest.NewServer(New(st, nil))
	defer srv.Close()

	// GET on /query.
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: %d", resp.StatusCode)
	}
	// Malformed body.
	resp, err = http.Post(srv.URL+"/query", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d", resp.StatusCode)
	}
	// Missing fact params.
	resp, err = http.Get(srv.URL + "/fact")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing params: %d", resp.StatusCode)
	}
	// Bad at param.
	resp, err = http.Get(srv.URL + "/fact?entity=a&attr=b&at=xyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad at: %d", resp.StatusCode)
	}
	// Health.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}

func TestWireValueRoundTrip(t *testing.T) {
	vals := []element.Value{
		element.Null,
		element.Bool(true),
		element.Int(-42),
		element.Float(2.5),
		element.String("héllo"),
		element.Time(temporal.Instant(123456789)),
	}
	for _, v := range vals {
		got := toWire(v).Value()
		if !got.Equal(v) && !(got.IsNull() && v.IsNull()) {
			t.Errorf("round trip %s: got %s", v, got)
		}
		if got.Kind() != v.Kind() {
			t.Errorf("kind %s: got %s", v.Kind(), got.Kind())
		}
	}
}

func TestNowAnchorsCurrentQueries(t *testing.T) {
	st := state.NewStore()
	st.Put("e", "a", element.Int(1), 100)
	srv := httptest.NewServer(New(st, nil))
	defer srv.Close()
	res, err := NewClient(srv.URL).Query("SELECT value FROM a WHERE entity = 'e'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("default now should see latest state: %v", res.Rows)
	}
}

// TestTransactionTimeOverTheWire covers the remote SYSTEM TIME surface:
// the /fact systime parameter and the SYSTEM TIME ASOF query clause must
// both serve past beliefs — a retroactive correction recorded later stays
// invisible at the earlier belief instant — from a snapshot handle pinned
// per request.
func TestTransactionTimeOverTheWire(t *testing.T) {
	st := state.NewStore()
	db := st.DB()
	if err := db.Put("ann", "position", element.String("hall"),
		state.WithValidTime(10), state.WithTransactionTime(10)); err != nil {
		t.Fatal(err)
	}
	// Retroactive correction recorded at 50: ann was in the vault over
	// [12, 18) all along.
	if err := db.Put("ann", "position", element.String("vault"),
		state.WithValidTime(12), state.WithEndValidTime(18),
		state.WithTransactionTime(50)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(st, nil))
	defer srv.Close()
	client := NewClient(srv.URL)

	// Current belief about valid time 15: the correction.
	f, ok, err := client.ValidAt("ann", "position", 15)
	if err != nil || !ok || f.Value.MustString() != "vault" {
		t.Fatalf("current belief: %v %v %v", f, ok, err)
	}
	// Belief at transaction time 30 about valid time 15: pre-correction.
	f, ok, err = client.AsOf("ann", "position", 15, 30)
	if err != nil || !ok || f.Value.MustString() != "hall" {
		t.Fatalf("belief-at-30: %v %v %v", f, ok, err)
	}
	// The belief interval comes back as the belief at 30 knew it: the
	// supersession recorded at 50 was not yet part of that cut, so the
	// record is open (pinned reads are self-contained and repeatable).
	if f.RecordedAt != 10 || f.SupersededAt != temporal.Forever {
		t.Fatalf("wire fact transaction-time interval: %v", f.Recorded())
	}
	// Open version as believed at 30.
	f, ok, err = client.CurrentAsOf("ann", "position", 30)
	if err != nil || !ok || f.Value.MustString() != "hall" {
		t.Fatalf("current-as-of-30: %v %v %v", f, ok, err)
	}
	// Belief before anything was recorded.
	if _, ok, err = client.CurrentAsOf("ann", "position", 5); err != nil || ok {
		t.Fatalf("belief-at-5 should be empty, got found=%v err=%v", ok, err)
	}
	// The composable query clause over the wire agrees.
	res, err := client.Query("SELECT value FROM position ASOF 15 SYSTEM TIME ASOF 30")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].MustString() != "hall" {
		t.Fatalf("SYSTEM TIME query: %v %v", res, err)
	}
	// Malformed systime is a 400, not a silent current-belief read.
	resp, err := http.Get(srv.URL + "/fact?entity=ann&attr=position&systime=nonsense")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad systime: status %d", resp.StatusCode)
	}
}
