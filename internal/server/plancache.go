// Bounded LRU cache of prepared queries for the HTTP query endpoint:
// remote callers repeating the same query text (dashboards, pollers) hit
// an already-planned handle instead of re-parsing per request.

package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/query"
)

// defaultPlanCacheSize bounds the server's prepared-query cache. Each
// entry holds one parsed query and its plan — small — so the bound
// exists to cap adversarial churn (unbounded distinct query texts), not
// memory pressure from legitimate use.
const defaultPlanCacheSize = 128

// planCache is a bounded LRU of prepared queries keyed by source text.
// Prepare errors are not cached: a malformed query costs a parse per
// attempt but never poisons the cache.
type planCache struct {
	mu    sync.Mutex
	limit int
	ll    *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element

	// prepared counts misses (queries parsed and planned); hits counts
	// cache hits. Atomic so Stats can read without the cache lock.
	prepared atomic.Uint64
	hits     atomic.Uint64
}

type cacheEntry struct {
	src string
	p   *query.Prepared
}

func newPlanCache(limit int) *planCache {
	if limit < 1 {
		limit = 1
	}
	return &planCache{limit: limit, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the prepared handle for src, planning and caching it on a
// miss. Handles are immutable, so concurrent callers may share one.
func (c *planCache) get(src string) (*query.Prepared, error) {
	c.mu.Lock()
	if el, ok := c.byKey[src]; ok {
		c.ll.MoveToFront(el)
		p := el.Value.(*cacheEntry).p
		c.mu.Unlock()
		c.hits.Add(1)
		return p, nil
	}
	c.mu.Unlock()

	// Plan outside the lock: parsing is cheap but needn't serialize
	// unrelated requests. A racing duplicate plan is harmless — last
	// insert wins and both handles are valid.
	p, err := query.Prepare(src)
	if err != nil {
		return nil, err
	}
	c.prepared.Add(1)

	c.mu.Lock()
	if el, ok := c.byKey[src]; ok {
		c.ll.MoveToFront(el)
		p = el.Value.(*cacheEntry).p
	} else {
		c.byKey[src] = c.ll.PushFront(&cacheEntry{src: src, p: p})
		if c.ll.Len() > c.limit {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.byKey, oldest.Value.(*cacheEntry).src)
		}
	}
	c.mu.Unlock()
	return p, nil
}
