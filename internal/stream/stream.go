// Package stream provides the dataflow substrate: messages, operators,
// pipelines, sources, sinks, and merging of timestamp-ordered inputs.
//
// The paper's Figure 1 routes input streams into both the state management
// component and the stream processing component. This package supplies the
// plumbing those components share: a synchronous operator model (used by
// the engine for deterministic, timestamp-ordered processing) and a
// channel-based asynchronous runner for pipelines at the edges.
//
// Watermarks travel in-band: a Message carries either an element or a
// watermark asserting that no element with a smaller timestamp will follow.
// Window operators and the engine use watermarks to close windows and to
// take state snapshots.
package stream

import (
	"container/heap"
	"sync"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Message is the unit that flows between operators: exactly one of an
// element or a watermark.
type Message struct {
	// El is the payload element; nil for watermark messages.
	El *element.Element
	// Watermark, valid when IsWatermark, asserts that all future elements
	// have Timestamp >= Watermark.
	Watermark temporal.Instant
	// IsWatermark distinguishes the two variants.
	IsWatermark bool
}

// ElementMsg wraps an element in a Message.
func ElementMsg(el *element.Element) Message { return Message{El: el} }

// WatermarkMsg builds a watermark message.
func WatermarkMsg(t temporal.Instant) Message {
	return Message{Watermark: t, IsWatermark: true}
}

// Timestamp returns the element timestamp or the watermark instant.
func (m Message) Timestamp() temporal.Instant {
	if m.IsWatermark {
		return m.Watermark
	}
	return m.El.Timestamp
}

// Operator is a synchronous stream transformer: it consumes one message and
// emits zero or more messages. Operators are driven single-threaded by a
// Pipeline or by the engine, so implementations need no internal locking.
type Operator interface {
	Process(m Message) []Message
}

// OperatorFunc adapts a function to the Operator interface.
type OperatorFunc func(m Message) []Message

// Process implements Operator.
func (f OperatorFunc) Process(m Message) []Message { return f(m) }

// Pipeline chains operators; the output of each feeds the next.
type Pipeline struct {
	ops []Operator
}

// NewPipeline chains the given operators in order.
func NewPipeline(ops ...Operator) *Pipeline { return &Pipeline{ops: ops} }

// Append adds an operator at the end of the chain.
func (p *Pipeline) Append(op Operator) { p.ops = append(p.ops, op) }

// Process pushes one message through the whole chain and returns the final
// outputs.
func (p *Pipeline) Process(m Message) []Message {
	batch := []Message{m}
	for _, op := range p.ops {
		if len(batch) == 0 {
			return nil
		}
		var next []Message
		for _, in := range batch {
			next = append(next, op.Process(in)...)
		}
		batch = next
	}
	return batch
}

// ProcessAll pushes a batch of messages through the chain.
func (p *Pipeline) ProcessAll(ms []Message) []Message {
	var out []Message
	for _, m := range ms {
		out = append(out, p.Process(m)...)
	}
	return out
}

// Filter emits only elements satisfying pred; watermarks pass through.
func Filter(pred func(*element.Element) bool) Operator {
	return OperatorFunc(func(m Message) []Message {
		if m.IsWatermark || pred(m.El) {
			return []Message{m}
		}
		return nil
	})
}

// Map transforms each element; watermarks pass through. Returning nil drops
// the element.
func Map(fn func(*element.Element) *element.Element) Operator {
	return OperatorFunc(func(m Message) []Message {
		if m.IsWatermark {
			return []Message{m}
		}
		if out := fn(m.El); out != nil {
			return []Message{ElementMsg(out)}
		}
		return nil
	})
}

// FlatMap transforms each element into zero or more elements.
func FlatMap(fn func(*element.Element) []*element.Element) Operator {
	return OperatorFunc(func(m Message) []Message {
		if m.IsWatermark {
			return []Message{m}
		}
		outs := fn(m.El)
		ms := make([]Message, 0, len(outs))
		for _, el := range outs {
			ms = append(ms, ElementMsg(el))
		}
		return ms
	})
}

// Collector is a sink operator that retains every element it sees.
type Collector struct {
	Elements  []*element.Element
	Watermark temporal.Instant
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{Watermark: temporal.MinInstant} }

// Process implements Operator, retaining elements and tracking the highest
// watermark.
func (c *Collector) Process(m Message) []Message {
	if m.IsWatermark {
		if m.Watermark > c.Watermark {
			c.Watermark = m.Watermark
		}
	} else {
		c.Elements = append(c.Elements, m.El)
	}
	return nil
}

// Reset clears the collector.
func (c *Collector) Reset() {
	c.Elements = nil
	c.Watermark = temporal.MinInstant
}

// Counter is a sink operator that counts elements.
type Counter struct {
	N uint64
}

// Process implements Operator.
func (c *Counter) Process(m Message) []Message {
	if !m.IsWatermark {
		c.N++
	}
	return nil
}

// FromElements converts a timestamp-sorted batch into messages, assigning
// arrival sequence numbers and appending a final watermark past the last
// timestamp so downstream windows flush.
func FromElements(els []*element.Element) []Message {
	ms := make([]Message, 0, len(els)+1)
	last := temporal.MinInstant
	for i, el := range els {
		el.Seq = uint64(i)
		if el.Timestamp > last {
			last = el.Timestamp
		}
		ms = append(ms, ElementMsg(el))
	}
	ms = append(ms, WatermarkMsg(last+1))
	return ms
}

// WithPeriodicWatermarks interleaves watermark messages into a
// timestamp-sorted element batch every `period` of application time. The
// final watermark still flushes everything.
func WithPeriodicWatermarks(els []*element.Element, period temporal.Instant) []Message {
	if len(els) == 0 {
		return []Message{WatermarkMsg(temporal.MinInstant + 1)}
	}
	ms := make([]Message, 0, len(els)+len(els)/4+1)
	next := els[0].Timestamp + period
	last := temporal.MinInstant
	for i, el := range els {
		el.Seq = uint64(i)
		for el.Timestamp >= next {
			ms = append(ms, WatermarkMsg(next))
			next += period
		}
		if el.Timestamp > last {
			last = el.Timestamp
		}
		ms = append(ms, ElementMsg(el))
	}
	ms = append(ms, WatermarkMsg(last+1))
	return ms
}

// mergeItem is one head-of-stream entry in the merge heap.
type mergeItem struct {
	el  *element.Element
	src int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].el.Timestamp != h[j].el.Timestamp {
		return h[i].el.Timestamp < h[j].el.Timestamp
	}
	if h[i].el.Seq != h[j].el.Seq {
		return h[i].el.Seq < h[j].el.Seq
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// MergeSorted merges several timestamp-sorted element slices into one
// timestamp-sorted slice using a k-way heap merge. Ties break by arrival
// sequence, then by input index, so the merge is deterministic.
func MergeSorted(inputs ...[]*element.Element) []*element.Element {
	h := make(mergeHeap, 0, len(inputs))
	pos := make([]int, len(inputs))
	total := 0
	for i, in := range inputs {
		total += len(in)
		if len(in) > 0 {
			h = append(h, mergeItem{el: in[0], src: i})
			pos[i] = 1
		}
	}
	heap.Init(&h)
	out := make([]*element.Element, 0, total)
	for h.Len() > 0 {
		it := heap.Pop(&h).(mergeItem)
		out = append(out, it.el)
		if pos[it.src] < len(inputs[it.src]) {
			heap.Push(&h, mergeItem{el: inputs[it.src][pos[it.src]], src: it.src})
			pos[it.src]++
		}
	}
	return out
}

// Channel-based asynchronous runner ------------------------------------

// RunChannel drives a pipeline from an input channel to an output channel
// in a goroutine. It closes out when in is drained. Use for edge plumbing;
// the engine itself runs synchronously for determinism.
func RunChannel(in <-chan Message, p *Pipeline) <-chan Message {
	out := make(chan Message, 64)
	go func() {
		defer close(out)
		for m := range in {
			for _, o := range p.Process(m) {
				out <- o
			}
		}
	}()
	return out
}

// SourceChannel streams a message batch into a channel from a goroutine.
func SourceChannel(ms []Message) <-chan Message {
	ch := make(chan Message, 64)
	go func() {
		defer close(ch)
		for _, m := range ms {
			ch <- m
		}
	}()
	return ch
}

// Drain collects everything from a channel.
func Drain(ch <-chan Message) []Message {
	var out []Message
	for m := range ch {
		out = append(out, m)
	}
	return out
}

// FanOut duplicates a channel into n channels, each receiving every
// message. The outputs are closed when the input closes.
func FanOut(in <-chan Message, n int) []<-chan Message {
	outs := make([]chan Message, n)
	ros := make([]<-chan Message, n)
	for i := range outs {
		outs[i] = make(chan Message, 64)
		ros[i] = outs[i]
	}
	go func() {
		for m := range in {
			for _, o := range outs {
				o <- m
			}
		}
		for _, o := range outs {
			close(o)
		}
	}()
	return ros
}

// PartitionBy splits an element stream across n channels by hashing the
// key field, so all elements of one key land in one partition. Watermarks
// are broadcast to every partition.
func PartitionBy(in <-chan Message, n int, key func(*element.Element) string) []<-chan Message {
	outs := make([]chan Message, n)
	ros := make([]<-chan Message, n)
	for i := range outs {
		outs[i] = make(chan Message, 64)
		ros[i] = outs[i]
	}
	go func() {
		for m := range in {
			if m.IsWatermark {
				for _, o := range outs {
					o <- m
				}
				continue
			}
			outs[fnv32(key(m.El))%uint32(n)] <- m
		}
		for _, o := range outs {
			close(o)
		}
	}()
	return ros
}

func fnv32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// MergeChannels interleaves several channels into one, preserving no
// particular order across inputs (use MergeSorted for ordered merges of
// finished batches). The output closes when all inputs close.
func MergeChannels(ins ...<-chan Message) <-chan Message {
	out := make(chan Message, 64)
	var wg sync.WaitGroup
	wg.Add(len(ins))
	for _, in := range ins {
		go func(in <-chan Message) {
			defer wg.Done()
			for m := range in {
				out <- m
			}
		}(in)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}
