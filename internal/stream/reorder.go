package stream

import (
	"container/heap"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Reorderer buffers out-of-order elements and releases them in
// (timestamp, seq) order when watermarks advance: on a watermark w, every
// buffered element with timestamp < w is emitted in order, followed by
// the watermark itself. Elements at or after the current watermark are
// late by definition and are counted and dropped (the engine's
// correctness depends on in-order delivery; see DESIGN.md §3).
//
// Place a Reorderer at the front of a pipeline whose source cannot
// guarantee order:
//
//	p := stream.NewPipeline(stream.NewReorderer(), gate, query)
type Reorderer struct {
	buf       elementHeap
	watermark temporal.Instant
	late      uint64
}

// NewReorderer returns an empty reorder buffer.
func NewReorderer() *Reorderer {
	return &Reorderer{watermark: temporal.MinInstant}
}

// Process implements Operator.
func (r *Reorderer) Process(m Message) []Message {
	if !m.IsWatermark {
		if m.El.Timestamp < r.watermark {
			r.late++
			return nil
		}
		heap.Push(&r.buf, m.El)
		return nil
	}
	if m.Watermark <= r.watermark {
		return nil
	}
	r.watermark = m.Watermark
	var out []Message
	for r.buf.Len() > 0 && r.buf[0].Timestamp < m.Watermark {
		out = append(out, ElementMsg(heap.Pop(&r.buf).(*element.Element)))
	}
	return append(out, m)
}

// Pending reports the number of buffered elements.
func (r *Reorderer) Pending() int { return r.buf.Len() }

// Late reports how many elements arrived behind the watermark and were
// dropped.
func (r *Reorderer) Late() uint64 { return r.late }

// Flush releases everything still buffered, in order, with a final
// watermark past the last element. Call at end of input.
func (r *Reorderer) Flush() []Message {
	var out []Message
	last := r.watermark
	for r.buf.Len() > 0 {
		el := heap.Pop(&r.buf).(*element.Element)
		if el.Timestamp+1 > last {
			last = el.Timestamp + 1
		}
		out = append(out, ElementMsg(el))
	}
	return append(out, WatermarkMsg(last))
}

// elementHeap orders elements by (timestamp, seq).
type elementHeap []*element.Element

func (h elementHeap) Len() int            { return len(h) }
func (h elementHeap) Less(i, j int) bool  { return h[i].Before(h[j]) }
func (h elementHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *elementHeap) Push(x interface{}) { *h = append(*h, x.(*element.Element)) }
func (h *elementHeap) Pop() interface{} {
	old := *h
	n := len(old)
	el := old[n-1]
	*h = old[:n-1]
	return el
}
