package stream

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

var testSchema = element.NewSchema(
	element.Field{Name: "k", Kind: element.KindString},
	element.Field{Name: "v", Kind: element.KindInt},
)

func el(ts int64, k string, v int64) *element.Element {
	return element.New("T", temporal.Instant(ts), element.NewTuple(testSchema, element.String(k), element.Int(v)))
}

func TestMessageTimestamp(t *testing.T) {
	if ElementMsg(el(7, "a", 1)).Timestamp() != 7 {
		t.Error("element timestamp")
	}
	if WatermarkMsg(9).Timestamp() != 9 {
		t.Error("watermark timestamp")
	}
}

func TestFilterMapFlatMap(t *testing.T) {
	p := NewPipeline(
		Filter(func(e *element.Element) bool { return e.MustGet("v").MustInt()%2 == 0 }),
		Map(func(e *element.Element) *element.Element {
			return element.New(e.Stream, e.Timestamp, e.Tuple.With("v", element.Int(e.MustGet("v").MustInt()*10)))
		}),
	)
	c := NewCollector()
	p.Append(c)
	msgs := FromElements([]*element.Element{el(1, "a", 1), el(2, "a", 2), el(3, "a", 3), el(4, "a", 4)})
	p.ProcessAll(msgs)
	if len(c.Elements) != 2 || c.Elements[0].MustGet("v").MustInt() != 20 || c.Elements[1].MustGet("v").MustInt() != 40 {
		t.Fatalf("got %v", c.Elements)
	}
	if c.Watermark != 5 {
		t.Errorf("final watermark: got %d", c.Watermark)
	}

	fm := NewPipeline(FlatMap(func(e *element.Element) []*element.Element {
		return []*element.Element{e, e}
	}))
	out := fm.ProcessAll(FromElements([]*element.Element{el(1, "a", 1)}))
	n := 0
	for _, m := range out {
		if !m.IsWatermark {
			n++
		}
	}
	if n != 2 {
		t.Errorf("flatmap duplication: got %d", n)
	}
}

func TestMapDropsNil(t *testing.T) {
	p := NewPipeline(Map(func(*element.Element) *element.Element { return nil }))
	out := p.Process(ElementMsg(el(1, "a", 1)))
	if len(out) != 0 {
		t.Error("nil map result should drop element")
	}
}

func TestCollectorResetAndCounter(t *testing.T) {
	c := NewCollector()
	c.Process(ElementMsg(el(1, "a", 1)))
	c.Process(WatermarkMsg(5))
	c.Reset()
	if len(c.Elements) != 0 || c.Watermark != temporal.MinInstant {
		t.Error("reset failed")
	}
	cnt := &Counter{}
	cnt.Process(ElementMsg(el(1, "a", 1)))
	cnt.Process(WatermarkMsg(2))
	cnt.Process(ElementMsg(el(3, "a", 1)))
	if cnt.N != 2 {
		t.Errorf("counter: got %d", cnt.N)
	}
}

func TestFromElementsAssignsSeqAndWatermark(t *testing.T) {
	ms := FromElements([]*element.Element{el(5, "a", 1), el(5, "b", 2)})
	if len(ms) != 3 || ms[0].El.Seq != 0 || ms[1].El.Seq != 1 {
		t.Fatalf("got %v", ms)
	}
	last := ms[2]
	if !last.IsWatermark || last.Watermark != 6 {
		t.Errorf("final watermark: %v", last)
	}
}

func TestWithPeriodicWatermarks(t *testing.T) {
	els := []*element.Element{el(0, "a", 1), el(10, "a", 2), el(25, "a", 3)}
	ms := WithPeriodicWatermarks(els, 10)
	// Expect watermarks at 10, 20 interleaved and a final one at 26.
	var wms []int64
	for _, m := range ms {
		if m.IsWatermark {
			wms = append(wms, int64(m.Watermark))
		}
	}
	want := []int64{10, 20, 26}
	if len(wms) != len(want) {
		t.Fatalf("watermarks: got %v want %v", wms, want)
	}
	for i := range want {
		if wms[i] != want[i] {
			t.Fatalf("watermarks: got %v want %v", wms, want)
		}
	}
	// Watermark must precede any element with equal-or-greater timestamp.
	seenWM := temporal.MinInstant
	for _, m := range ms {
		if m.IsWatermark {
			seenWM = m.Watermark
		} else if m.El.Timestamp < seenWM {
			t.Fatalf("element %v after watermark %d", m.El, seenWM)
		}
	}
	if got := WithPeriodicWatermarks(nil, 10); len(got) != 1 || !got[0].IsWatermark {
		t.Error("empty input should still emit a watermark")
	}
}

func TestMergeSorted(t *testing.T) {
	a := []*element.Element{el(1, "a", 1), el(4, "a", 2), el(9, "a", 3)}
	b := []*element.Element{el(2, "b", 1), el(4, "b", 2)}
	c := []*element.Element{el(0, "c", 1)}
	got := MergeSorted(a, b, c)
	if len(got) != 6 {
		t.Fatalf("len: %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Timestamp < got[i-1].Timestamp {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	// Equal timestamps at ts=4: input index breaks the tie (a before b).
	if got[3].MustGet("k").MustString() != "a" || got[4].MustGet("k").MustString() != "b" {
		t.Errorf("tie-break wrong: %v %v", got[3], got[4])
	}
}

func TestMergeSortedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		var inputs [][]*element.Element
		var all []int64
		for s := 0; s < 4; s++ {
			n := rng.Intn(20)
			ts := make([]int64, n)
			for i := range ts {
				ts[i] = rng.Int63n(100)
			}
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			in := make([]*element.Element, n)
			for i, v := range ts {
				in[i] = el(v, "x", int64(i))
				all = append(all, v)
			}
			inputs = append(inputs, in)
		}
		got := MergeSorted(inputs...)
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		if len(got) != len(all) {
			t.Fatalf("length mismatch")
		}
		for i := range got {
			if int64(got[i].Timestamp) != all[i] {
				t.Fatalf("trial %d: order mismatch at %d", trial, i)
			}
		}
	}
}

func TestRunChannelAndDrain(t *testing.T) {
	in := SourceChannel(FromElements([]*element.Element{el(1, "a", 1), el(2, "a", 2)}))
	out := RunChannel(in, NewPipeline(Filter(func(e *element.Element) bool {
		return e.MustGet("v").MustInt() > 1
	})))
	got := Drain(out)
	n := 0
	for _, m := range got {
		if !m.IsWatermark {
			n++
		}
	}
	if n != 1 {
		t.Errorf("got %d elements", n)
	}
}

func TestFanOut(t *testing.T) {
	in := SourceChannel(FromElements([]*element.Element{el(1, "a", 1), el(2, "a", 2)}))
	outs := FanOut(in, 3)
	for i, o := range outs {
		got := Drain(o)
		if len(got) != 3 { // 2 elements + watermark
			t.Errorf("branch %d: got %d messages", i, len(got))
		}
	}
}

func TestPartitionBy(t *testing.T) {
	els := []*element.Element{
		el(1, "a", 1), el(2, "b", 1), el(3, "a", 2), el(4, "b", 2), el(5, "c", 1),
	}
	in := SourceChannel(FromElements(els))
	parts := PartitionBy(in, 2, func(e *element.Element) string { return e.MustGet("k").MustString() })
	keyPart := map[string]int{}
	total := 0
	for i, p := range parts {
		for _, m := range Drain(p) {
			if m.IsWatermark {
				continue
			}
			total++
			k := m.El.MustGet("k").MustString()
			if prev, seen := keyPart[k]; seen && prev != i {
				t.Errorf("key %q split across partitions %d and %d", k, prev, i)
			}
			keyPart[k] = i
		}
	}
	if total != len(els) {
		t.Errorf("lost elements: got %d want %d", total, len(els))
	}
}

func TestMergeChannels(t *testing.T) {
	a := SourceChannel(FromElements([]*element.Element{el(1, "a", 1)}))
	b := SourceChannel(FromElements([]*element.Element{el(2, "b", 1)}))
	got := Drain(MergeChannels(a, b))
	n := 0
	for _, m := range got {
		if !m.IsWatermark {
			n++
		}
	}
	if n != 2 {
		t.Errorf("merged elements: got %d", n)
	}
}

func TestPipelineShortCircuit(t *testing.T) {
	calls := 0
	p := NewPipeline(
		Filter(func(*element.Element) bool { return false }),
		OperatorFunc(func(m Message) []Message { calls++; return []Message{m} }),
	)
	p.Process(ElementMsg(el(1, "a", 1)))
	if calls != 0 {
		t.Error("downstream operator should not run after drop")
	}
}
