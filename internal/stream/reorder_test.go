package stream

import (
	"math/rand"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

func TestReordererBasic(t *testing.T) {
	r := NewReorderer()
	// Out-of-order arrivals within one watermark period.
	if got := r.Process(ElementMsg(el(5, "a", 1))); got != nil {
		t.Fatal("elements buffer until a watermark")
	}
	r.Process(ElementMsg(el(2, "b", 1)))
	r.Process(ElementMsg(el(8, "c", 1)))
	if r.Pending() != 3 {
		t.Fatalf("pending: %d", r.Pending())
	}
	out := r.Process(WatermarkMsg(6))
	// Elements < 6 in order, then the watermark. ts=8 stays buffered.
	if len(out) != 3 || out[0].El.Timestamp != 2 || out[1].El.Timestamp != 5 || !out[2].IsWatermark {
		t.Fatalf("release: %v", out)
	}
	if r.Pending() != 1 {
		t.Fatalf("pending after release: %d", r.Pending())
	}
}

func TestReordererDropsLate(t *testing.T) {
	r := NewReorderer()
	r.Process(WatermarkMsg(10))
	if got := r.Process(ElementMsg(el(5, "a", 1))); got != nil {
		t.Fatal("late element should be dropped silently")
	}
	if r.Late() != 1 {
		t.Fatalf("late count: %d", r.Late())
	}
	// Watermark regression is ignored.
	if got := r.Process(WatermarkMsg(5)); got != nil {
		t.Fatal("regressing watermark should be ignored")
	}
}

func TestReordererFlush(t *testing.T) {
	r := NewReorderer()
	r.Process(ElementMsg(el(9, "a", 1)))
	r.Process(ElementMsg(el(3, "b", 1)))
	out := r.Flush()
	if len(out) != 3 || out[0].El.Timestamp != 3 || out[1].El.Timestamp != 9 {
		t.Fatalf("flush: %v", out)
	}
	last := out[2]
	if !last.IsWatermark || last.Watermark != 10 {
		t.Fatalf("final watermark: %v", last)
	}
	if r.Pending() != 0 {
		t.Fatal("flush should empty the buffer")
	}
}

// TestReordererRandomized shuffles a stream within bounded disorder and
// checks the output is in order and complete.
func TestReordererRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		const n = 200
		const disorder = 10
		els := make([]*element.Element, n)
		for i := range els {
			els[i] = el(int64(i), "k", int64(i))
			els[i].Seq = uint64(i)
		}
		// Bounded disorder: shuffle within disjoint blocks of `disorder`,
		// so no element is displaced by more than disorder-1 positions.
		for start := 0; start < n; start += disorder {
			end := start + disorder
			if end > n {
				end = n
			}
			block := els[start:end]
			rng.Shuffle(len(block), func(i, j int) { block[i], block[j] = block[j], block[i] })
		}
		r := NewReorderer()
		var out []*element.Element
		for i, e := range els {
			for _, m := range r.Process(ElementMsg(e)) {
				if !m.IsWatermark {
					out = append(out, m.El)
				}
			}
			// Watermark lags by the disorder bound, so nothing is late.
			if i%7 == 0 {
				wm := temporal.Instant(i - 2*disorder)
				for _, m := range r.Process(WatermarkMsg(wm)) {
					if !m.IsWatermark {
						out = append(out, m.El)
					}
				}
			}
		}
		for _, m := range r.Flush() {
			if !m.IsWatermark {
				out = append(out, m.El)
			}
		}
		if r.Late() != 0 {
			t.Fatalf("trial %d: %d late drops with sufficient watermark lag", trial, r.Late())
		}
		if len(out) != n {
			t.Fatalf("trial %d: %d/%d delivered", trial, len(out), n)
		}
		for i := 1; i < len(out); i++ {
			if !out[i-1].Before(out[i]) {
				t.Fatalf("trial %d: out of order at %d", trial, i)
			}
		}
	}
}

func TestReordererInPipeline(t *testing.T) {
	c := NewCollector()
	p := NewPipeline(NewReorderer(), c)
	p.Process(ElementMsg(el(7, "a", 1)))
	p.Process(ElementMsg(el(3, "a", 1)))
	p.Process(WatermarkMsg(10))
	if len(c.Elements) != 2 || c.Elements[0].Timestamp != 3 {
		t.Fatalf("pipeline reorder: %v", c.Elements)
	}
	if c.Watermark != 10 {
		t.Fatalf("watermark propagation: %d", c.Watermark)
	}
}
