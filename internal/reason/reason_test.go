package reason

import (
	"testing"

	"repro/internal/element"
	"repro/internal/state"
)

func TestOntologyClosure(t *testing.T) {
	o := NewOntology()
	mustOK(t, o.SubClassOf("novel", "fiction"))
	mustOK(t, o.SubClassOf("fiction", "books"))
	mustOK(t, o.SubClassOf("cookbook", "books"))
	got := o.Superclasses("novel")
	if len(got) != 2 || got[0] != "books" || got[1] != "fiction" {
		t.Fatalf("superclasses: %v", got)
	}
	if !o.IsSubClassOf("novel", "books") || o.IsSubClassOf("books", "novel") {
		t.Error("IsSubClassOf")
	}
	subs := o.Subclasses("books")
	if len(subs) != 3 {
		t.Fatalf("subclasses: %v", subs)
	}
	if len(o.Classes()) != 4 {
		t.Fatalf("classes: %v", o.Classes())
	}
	if len(o.Superclasses("unknown")) != 0 {
		t.Error("unknown class has no superclasses")
	}
}

func TestOntologyCycleRejected(t *testing.T) {
	o := NewOntology()
	mustOK(t, o.SubClassOf("a", "b"))
	mustOK(t, o.SubClassOf("b", "c"))
	if err := o.SubClassOf("c", "a"); err == nil {
		t.Error("cycle should be rejected")
	}
	if err := o.SubClassOf("a", "a"); err == nil {
		t.Error("self-subsumption should be rejected")
	}
	if err := o.SubPropertyOf("p", "p"); err == nil {
		t.Error("property self-subsumption should be rejected")
	}
}

func TestOntologyDomainRange(t *testing.T) {
	o := NewOntology()
	o.SetDomain("worksIn", "person")
	o.SetRange("worksIn", "room")
	if d, ok := o.Domain("worksIn"); !ok || d != "person" {
		t.Error("domain")
	}
	if r, ok := o.Range("worksIn"); !ok || r != "room" {
		t.Error("range")
	}
	if _, ok := o.Domain("other"); ok {
		t.Error("missing domain")
	}
}

func TestTypePropagation(t *testing.T) {
	st := state.NewStore()
	o := NewOntology()
	mustOK(t, o.SubClassOf("novel", "fiction"))
	mustOK(t, o.SubClassOf("fiction", "books"))
	r := NewReasoner(st, o)

	st.Put("p1", TypeAttribute, element.String("novel"), 10)

	vals := r.HoldsAt("p1", TypeAttribute, 15)
	if len(vals) != 3 { // novel (asserted) + fiction + books (derived)
		t.Fatalf("types at 15: %v", vals)
	}
	if got := r.HoldsAt("p1", TypeAttribute, 5); len(got) != 0 {
		t.Fatalf("types before assertion: %v", got)
	}
	ents := r.EntitiesOfClassAt("books", 15)
	if len(ents) != 1 || ents[0] != "p1" {
		t.Fatalf("entities of books: %v", ents)
	}
}

func TestDerivedValidityFollowsReclassification(t *testing.T) {
	// The §3.1 scenario: reclassifying a product bounds old derivations.
	st := state.NewStore()
	o := NewOntology()
	mustOK(t, o.SubClassOf("novel", "books"))
	mustOK(t, o.SubClassOf("boardgame", "toys"))
	r := NewReasoner(st, o)

	st.Put("p1", TypeAttribute, element.String("novel"), 0)
	st.Put("p1", TypeAttribute, element.String("boardgame"), 100) // reclassified

	if ents := r.EntitiesOfClassAt("books", 50); len(ents) != 1 {
		t.Fatalf("books at 50: %v", ents)
	}
	if ents := r.EntitiesOfClassAt("books", 150); len(ents) != 0 {
		t.Fatalf("books at 150 (stale!): %v", ents)
	}
	if ents := r.EntitiesOfClassAt("toys", 150); len(ents) != 1 {
		t.Fatalf("toys at 150: %v", ents)
	}
}

func TestSubPropertyAndDomainRange(t *testing.T) {
	st := state.NewStore()
	o := NewOntology()
	mustOK(t, o.SubPropertyOf("manages", "worksWith"))
	o.SetDomain("manages", "manager")
	o.SetRange("manages", "employee")
	r := NewReasoner(st, o)

	st.Put("ann", "manages", element.String("bob"), 10)

	if vals := r.HoldsAt("ann", "worksWith", 20); len(vals) != 1 || vals[0].MustString() != "bob" {
		t.Fatalf("subproperty: %v", vals)
	}
	if vals := r.HoldsAt("ann", TypeAttribute, 20); len(vals) != 1 || vals[0].MustString() != "manager" {
		t.Fatalf("domain typing: %v", vals)
	}
	if vals := r.HoldsAt("bob", TypeAttribute, 20); len(vals) != 1 || vals[0].MustString() != "employee" {
		t.Fatalf("range typing: %v", vals)
	}
}

func TestHornRuleJoin(t *testing.T) {
	// locatedIn(x)=r AND partOf(r)=b ⇒ inBuilding(x)=b
	st := state.NewStore()
	r := NewReasoner(st, nil)
	mustOK(t, r.AddRule(HornRule{
		Name: "in-building",
		Body: []TriplePattern{
			{Attr: "locatedIn", Entity: V("x"), Value: V("r")},
			{Attr: "partOf", Entity: V("r"), Value: V("b")},
		},
		Head: TriplePattern{Attr: "inBuilding", Entity: V("x"), Value: V("b")},
	}))

	st.Put("room1", "partOf", element.String("hq"), 0)
	st.Put("ann", "locatedIn", element.String("room1"), 10)
	st.Put("ann", "locatedIn", element.String("offsite"), 50)

	if vals := r.HoldsAt("ann", "inBuilding", 20); len(vals) != 1 || vals[0].MustString() != "hq" {
		t.Fatalf("join derivation: %v", vals)
	}
	// Temporal semantics: conclusion validity = intersection of premises.
	if vals := r.HoldsAt("ann", "inBuilding", 60); len(vals) != 0 {
		t.Fatalf("derivation should end when premise ends: %v", vals)
	}
	if vals := r.HoldsAt("ann", "inBuilding", 5); len(vals) != 0 {
		t.Fatalf("derivation before premise: %v", vals)
	}
}

func TestHornRuleTransitiveFixpoint(t *testing.T) {
	// partOf is transitive via a recursive rule.
	st := state.NewStore()
	r := NewReasoner(st, nil)
	mustOK(t, r.AddRule(HornRule{
		Name: "partof-trans",
		Body: []TriplePattern{
			{Attr: "partOf", Entity: V("a"), Value: V("b")},
			{Attr: "partOf", Entity: V("b"), Value: V("c")},
		},
		Head: TriplePattern{Attr: "partOf", Entity: V("a"), Value: V("c")},
	}))
	st.Put("desk", "partOf", element.String("room"), 0)
	st.Put("room", "partOf", element.String("floor"), 0)
	st.Put("floor", "partOf", element.String("building"), 0)

	vals := r.HoldsAt("desk", "partOf", 10)
	// asserted: room; derived: floor, building.
	if len(vals) != 3 {
		t.Fatalf("transitive closure: %v", vals)
	}
}

func TestRuleHeadUnboundRejected(t *testing.T) {
	r := NewReasoner(state.NewStore(), nil)
	err := r.AddRule(HornRule{
		Name: "bad",
		Body: []TriplePattern{{Attr: "a", Entity: V("x"), Value: V("y")}},
		Head: TriplePattern{Attr: "b", Entity: V("z"), Value: V("y")},
	})
	if err == nil {
		t.Error("unbound head variable should be rejected")
	}
}

func TestRuleWithConstants(t *testing.T) {
	st := state.NewStore()
	r := NewReasoner(st, nil)
	mustOK(t, r.AddRule(HornRule{
		Name: "vip",
		Body: []TriplePattern{
			{Attr: "tier", Entity: V("u"), Value: C(element.String("gold"))},
		},
		Head: TriplePattern{Attr: "vip", Entity: V("u"), Value: C(element.Bool(true))},
	}))
	st.Put("ann", "tier", element.String("gold"), 0)
	st.Put("bob", "tier", element.String("silver"), 0)
	if vals := r.HoldsAt("ann", "vip", 10); len(vals) != 1 || !vals[0].Truthy() {
		t.Fatalf("vip ann: %v", vals)
	}
	if vals := r.HoldsAt("bob", "vip", 10); len(vals) != 0 {
		t.Fatalf("vip bob: %v", vals)
	}
}

func TestIncrementalRematerialization(t *testing.T) {
	st := state.NewStore()
	o := NewOntology()
	mustOK(t, o.SubClassOf("a", "b"))
	r := NewReasoner(st, o)

	st.Put("x", TypeAttribute, element.String("a"), 0)
	n1 := r.Materialize()
	if n1 != 1 {
		t.Fatalf("derived: %d", n1)
	}
	// No change → cached.
	if r.Materialize() != 1 {
		t.Error("cached materialization")
	}
	// New base fact re-triggers.
	st.Put("y", TypeAttribute, element.String("a"), 5)
	if got := r.Materialize(); got != 2 {
		t.Fatalf("after change: %d", got)
	}
	// Retraction also re-triggers and removes coverage going forward.
	st.Retract("y", TypeAttribute, 10)
	r.Materialize()
	if vals := r.HoldsAt("y", TypeAttribute, 20); len(vals) != 0 {
		t.Fatalf("after retract: %v", vals)
	}
	if vals := r.HoldsAt("y", TypeAttribute, 7); len(vals) != 2 {
		t.Fatalf("history preserved: %v", vals)
	}
}

func TestDerivedAt(t *testing.T) {
	st := state.NewStore()
	o := NewOntology()
	mustOK(t, o.SubClassOf("novel", "books"))
	r := NewReasoner(st, o)
	st.Put("p", TypeAttribute, element.String("novel"), 0)
	facts := r.DerivedAt(5)
	if len(facts) != 1 || !facts[0].Derived || facts[0].Source != "reasoner" {
		t.Fatalf("derived facts: %v", facts)
	}
	if facts[0].Value.MustString() != "books" {
		t.Fatalf("derived value: %v", facts[0])
	}
	if r.DerivedCount() != 1 {
		t.Errorf("count: %d", r.DerivedCount())
	}
}

func TestRuleStrings(t *testing.T) {
	rule := HornRule{
		Name: "r",
		Body: []TriplePattern{{Attr: "a", Entity: V("x"), Value: C(element.Int(1))}},
		Head: TriplePattern{Attr: "b", Entity: V("x"), Value: V("x")},
	}
	if rule.String() == "" || rule.Body[0].String() == "" {
		t.Error("strings")
	}
}

func TestDeepTaxonomyFixpoint(t *testing.T) {
	st := state.NewStore()
	o := NewOntology()
	// Chain c0 ⊑ c1 ⊑ ... ⊑ c9.
	for i := 0; i < 9; i++ {
		mustOK(t, o.SubClassOf(cls(i), cls(i+1)))
	}
	r := NewReasoner(st, o)
	st.Put("e", TypeAttribute, element.String(cls(0)), 0)
	if vals := r.HoldsAt("e", TypeAttribute, 5); len(vals) != 10 {
		t.Fatalf("deep taxonomy: %d types", len(vals))
	}
}

func cls(i int) string { return string(rune('a'+i)) + "class" }

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestHoldsAtDedupesAssertedAndDerived(t *testing.T) {
	// If a fact is both asserted and derivable, HoldsAt reports it once.
	st := state.NewStore()
	o := NewOntology()
	mustOK(t, o.SubClassOf("a", "b"))
	r := NewReasoner(st, o)
	st.Put("x", TypeAttribute, element.String("b"), 0) // asserted b
	// Also derive b for x via another entity? Assert type a on a second
	// attribute lineage is not possible (same key) — use domain axiom.
	o.SetDomain("p", "b")
	r.markDirty()
	st.Put("x", "p", element.Int(1), 0)
	vals := r.HoldsAt("x", TypeAttribute, 5)
	if len(vals) != 1 || vals[0].MustString() != "b" {
		t.Fatalf("dedupe: %v", vals)
	}
}
