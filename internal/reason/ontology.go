// Package reason implements the reasoning component of Figure 1: an
// ontology (class and property taxonomies with domain/range constraints)
// plus temporal Horn rules, materialized by forward chaining over the
// state repository.
//
// The paper positions reasoning as a consumer of explicit state: "a
// reasoning system can extract implicit knowledge from the explicit state
// information to augment the answers to both stream processing rules and
// one-time queries" (§3), with ontologies supplying domain knowledge such
// as the product taxonomy of the e-commerce case study (§3.1).
//
// Derived facts carry temporal semantics: the validity of a conclusion is
// the intersection of the validities of its premises, so reclassifying a
// product at time t automatically bounds every conclusion drawn from the
// old classification to end at t.
package reason

import (
	"fmt"
	"sort"
)

// TypeAttribute is the distinguished attribute used for class membership
// facts: type(entity) = "ClassName".
const TypeAttribute = "type"

// Ontology holds schema-level domain knowledge: a class taxonomy, a
// property taxonomy, and property domain/range constraints.
type Ontology struct {
	subClass map[string]map[string]bool // class → direct superclasses
	subProp  map[string]map[string]bool // property → direct superproperties
	domains  map[string]string          // property → class of the subject
	ranges   map[string]string          // property → class of the (entity) value
}

// NewOntology returns an empty ontology.
func NewOntology() *Ontology {
	return &Ontology{
		subClass: make(map[string]map[string]bool),
		subProp:  make(map[string]map[string]bool),
		domains:  make(map[string]string),
		ranges:   make(map[string]string),
	}
}

// SubClassOf declares sub ⊑ super. Cycles are rejected.
func (o *Ontology) SubClassOf(sub, super string) error {
	return addEdge(o.subClass, sub, super, "class")
}

// SubPropertyOf declares sub ⊑ super for properties. Cycles are rejected.
func (o *Ontology) SubPropertyOf(sub, super string) error {
	return addEdge(o.subProp, sub, super, "property")
}

func addEdge(g map[string]map[string]bool, sub, super, kind string) error {
	if sub == super {
		return fmt.Errorf("reason: %s %q cannot subsume itself", kind, sub)
	}
	if reaches(g, super, sub) {
		return fmt.Errorf("reason: %s cycle %q ⊑ %q", kind, sub, super)
	}
	if g[sub] == nil {
		g[sub] = make(map[string]bool)
	}
	g[sub][super] = true
	return nil
}

func reaches(g map[string]map[string]bool, from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range g[n] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// SetDomain declares that any entity with the property is an instance of
// the class.
func (o *Ontology) SetDomain(property, class string) { o.domains[property] = class }

// SetRange declares that any (entity-valued) value of the property is an
// instance of the class.
func (o *Ontology) SetRange(property, class string) { o.ranges[property] = class }

// Domain returns the declared domain class of the property, if any.
func (o *Ontology) Domain(property string) (string, bool) {
	c, ok := o.domains[property]
	return c, ok
}

// Range returns the declared range class of the property, if any.
func (o *Ontology) Range(property string) (string, bool) {
	c, ok := o.ranges[property]
	return c, ok
}

// Superclasses returns the transitive superclasses of the class (excluding
// itself), sorted.
func (o *Ontology) Superclasses(class string) []string { return closure(o.subClass, class) }

// Superproperties returns the transitive superproperties of the property
// (excluding itself), sorted.
func (o *Ontology) Superproperties(property string) []string { return closure(o.subProp, property) }

// IsSubClassOf reports whether sub ⊑ super transitively (or sub == super).
func (o *Ontology) IsSubClassOf(sub, super string) bool { return reaches(o.subClass, sub, super) }

// Subclasses returns every declared class that transitively specializes
// the given class (excluding itself), sorted. Query rewriting uses this to
// expand a class filter over its taxonomy.
func (o *Ontology) Subclasses(class string) []string {
	var out []string
	for c := range o.subClass {
		if c != class && reaches(o.subClass, c, class) {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// Classes returns every class mentioned in the taxonomy, sorted.
func (o *Ontology) Classes() []string {
	set := map[string]bool{}
	for sub, supers := range o.subClass {
		set[sub] = true
		for s := range supers {
			set[s] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func closure(g map[string]map[string]bool, start string) []string {
	seen := map[string]bool{}
	stack := []string{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range g[n] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	delete(seen, start)
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
