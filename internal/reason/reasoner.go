package reason

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
)

// Term is one position of a triple pattern: either a variable (capitalized
// by convention, but any name works) or a constant.
type Term struct {
	Var   string
	Const element.Value
	IsVar bool
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name, IsVar: true} }

// C returns a constant term.
func C(v element.Value) Term { return Term{Const: v} }

// TriplePattern matches facts attr(entity) = value. The attribute is
// always constant; entity and value may be variables.
type TriplePattern struct {
	Attr   string
	Entity Term
	Value  Term
}

// String renders the pattern.
func (p TriplePattern) String() string {
	return fmt.Sprintf("%s(%s) = %s", p.Attr, termString(p.Entity), termString(p.Value))
}

func termString(t Term) string {
	if t.IsVar {
		return "?" + t.Var
	}
	return t.Const.String()
}

// HornRule derives the head fact wherever all body patterns hold
// simultaneously; the derived validity is the intersection of the premise
// validities.
type HornRule struct {
	Name string
	Body []TriplePattern
	Head TriplePattern
}

// String renders the rule.
func (r HornRule) String() string {
	parts := make([]string, len(r.Body))
	for i, b := range r.Body {
		parts[i] = b.String()
	}
	return fmt.Sprintf("%s: IF %s THEN %s", r.Name, strings.Join(parts, " AND "), r.Head)
}

// atomicFact is the reasoner's working representation: one value holding
// over one interval.
type atomicFact struct {
	entity string
	attr   string
	value  element.Value
	iv     temporal.Interval
}

type derivedKey struct {
	entity, attr, valueKey string
}

// Reasoner materializes implicit facts from a state store, an ontology,
// and user Horn rules. Derived facts live beside the store (not inside
// it), because inference is naturally multi-valued — an entity can belong
// to several classes at once — while the store enforces one value per
// (entity, attribute) at each instant.
//
// The reasoner is safe for concurrent use. It rematerializes lazily: store
// changes (observed through a watcher) mark it dirty, and the next query
// triggers a full forward-chaining pass. This recompute-on-change policy
// trades latency for simplicity over delete-and-rederive (DRed); the E6
// benchmark measures the cost.
type Reasoner struct {
	mu    sync.Mutex
	ont   *Ontology
	rules []HornRule
	store *state.Store
	dirty bool

	derived     map[derivedKey]*temporal.Set
	derivedVals map[derivedKey]element.Value
	lastDerived int
}

// NewReasoner builds a reasoner over the store. The ontology may be nil
// (rules only).
func NewReasoner(store *state.Store, ont *Ontology) *Reasoner {
	if ont == nil {
		ont = NewOntology()
	}
	r := &Reasoner{ont: ont, store: store, dirty: true}
	store.Watch(func(state.Change) { r.markDirty() })
	return r
}

// Ontology returns the reasoner's ontology.
func (r *Reasoner) Ontology() *Ontology { return r.ont }

// AddRule registers a Horn rule. Head variables must be bound by the body.
func (r *Reasoner) AddRule(rule HornRule) error {
	bound := map[string]bool{}
	for _, b := range rule.Body {
		if b.Entity.IsVar {
			bound[b.Entity.Var] = true
		}
		if b.Value.IsVar {
			bound[b.Value.Var] = true
		}
	}
	for _, t := range []Term{rule.Head.Entity, rule.Head.Value} {
		if t.IsVar && !bound[t.Var] {
			return fmt.Errorf("reason: rule %s: head variable ?%s not bound by body", rule.Name, t.Var)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rules = append(r.rules, rule)
	r.dirty = true
	return nil
}

func (r *Reasoner) markDirty() {
	r.mu.Lock()
	r.dirty = true
	r.mu.Unlock()
}

// Materialize runs forward chaining to fixpoint if the store changed since
// the last materialization. It returns the number of derived atomic facts.
func (r *Reasoner) Materialize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.dirty {
		return r.lastDerived
	}
	r.materializeLocked()
	return r.lastDerived
}

func (r *Reasoner) materializeLocked() {
	r.derived = make(map[derivedKey]*temporal.Set)
	r.derivedVals = make(map[derivedKey]element.Value)
	r.dirty = false

	base := r.baseFacts()
	derivedCount := 0
	// Semi-naive-ish loop: each round evaluates ontology axioms and rules
	// over base ∪ derived; stop when a round adds nothing.
	for round := 0; ; round++ {
		added := 0
		facts := append(append([]atomicFact{}, base...), r.derivedFactsLocked()...)
		byAttr := indexByAttr(facts)

		// Ontology axiom 1: type(e)=C, C ⊑ D ⇒ type(e)=D.
		for _, f := range byAttr[TypeAttribute] {
			cls, ok := f.value.AsString()
			if !ok {
				continue
			}
			for _, super := range r.ont.Superclasses(cls) {
				added += r.addDerived(f.entity, TypeAttribute, element.String(super), f.iv)
			}
		}
		// Ontology axiom 2: p(e)=v, p ⊑ q ⇒ q(e)=v.
		for attr, fs := range byAttr {
			supers := r.ont.Superproperties(attr)
			if len(supers) == 0 {
				continue
			}
			for _, f := range fs {
				for _, q := range supers {
					added += r.addDerived(f.entity, q, f.value, f.iv)
				}
			}
		}
		// Ontology axioms 3, 4: domain and range typing.
		for attr, fs := range byAttr {
			if cls, ok := r.ont.Domain(attr); ok {
				for _, f := range fs {
					added += r.addDerived(f.entity, TypeAttribute, element.String(cls), f.iv)
				}
			}
			if cls, ok := r.ont.Range(attr); ok {
				for _, f := range fs {
					if ent, ok := f.value.AsString(); ok {
						added += r.addDerived(ent, TypeAttribute, element.String(cls), f.iv)
					}
				}
			}
		}
		// User Horn rules.
		for _, rule := range r.rules {
			added += r.evalRule(rule, byAttr)
		}
		if added == 0 {
			break
		}
		derivedCount += added
	}
	total := 0
	for _, set := range r.derived {
		total += set.Len()
	}
	r.lastDerived = total
}

func (r *Reasoner) baseFacts() []atomicFact {
	versions := r.store.Scan(func(f *element.Fact) bool { return !f.Derived })
	out := make([]atomicFact, 0, len(versions))
	for _, f := range versions {
		out = append(out, atomicFact{entity: f.Entity, attr: f.Attribute, value: f.Value, iv: f.Validity})
	}
	return out
}

func (r *Reasoner) derivedFactsLocked() []atomicFact {
	var out []atomicFact
	for k, set := range r.derived {
		v := r.derivedVals[k]
		for _, iv := range set.Intervals() {
			out = append(out, atomicFact{entity: k.entity, attr: k.attr, value: v, iv: iv})
		}
	}
	return out
}

func indexByAttr(fs []atomicFact) map[string][]atomicFact {
	m := make(map[string][]atomicFact)
	for _, f := range fs {
		m[f.attr] = append(m[f.attr], f)
	}
	return m
}

// addDerived records a derived atomic fact unless the interval is already
// covered; it reports 1 if new coverage was added.
func (r *Reasoner) addDerived(entity, attr string, v element.Value, iv temporal.Interval) int {
	if iv.IsEmpty() {
		return 0
	}
	k := derivedKey{entity: entity, attr: attr, valueKey: v.Key()}
	set := r.derived[k]
	if set == nil {
		set = temporal.NewSet()
		r.derived[k] = set
		r.derivedVals[k] = v
	}
	if set.Covers(iv) {
		return 0
	}
	set.Add(iv)
	return 1
}

type binding map[string]element.Value

func (r *Reasoner) evalRule(rule HornRule, byAttr map[string][]atomicFact) int {
	type partial struct {
		b  binding
		iv temporal.Interval
	}
	parts := []partial{{b: binding{}, iv: temporal.Always()}}
	for _, pat := range rule.Body {
		var next []partial
		for _, p := range parts {
			for _, f := range byAttr[pat.Attr] {
				nb, ok := match(p.b, pat, f)
				if !ok {
					continue
				}
				iv := p.iv.Intersect(f.iv)
				if iv.IsEmpty() {
					continue
				}
				next = append(next, partial{b: nb, iv: iv})
			}
		}
		parts = next
		if len(parts) == 0 {
			return 0
		}
	}
	added := 0
	for _, p := range parts {
		ent, ok := resolve(p.b, rule.Head.Entity)
		if !ok {
			continue
		}
		entStr, ok := ent.AsString()
		if !ok {
			continue
		}
		val, ok := resolve(p.b, rule.Head.Value)
		if !ok {
			continue
		}
		added += r.addDerived(entStr, rule.Head.Attr, val, p.iv)
	}
	return added
}

func match(b binding, pat TriplePattern, f atomicFact) (binding, bool) {
	nb := b
	grown := false
	bind := func(t Term, v element.Value) bool {
		if !t.IsVar {
			return t.Const.Equal(v)
		}
		if cur, ok := nb[t.Var]; ok {
			return cur.Equal(v)
		}
		if !grown {
			cp := make(binding, len(nb)+1)
			for k, val := range nb {
				cp[k] = val
			}
			nb = cp
			grown = true
		}
		nb[t.Var] = v
		return true
	}
	if !bind(pat.Entity, element.String(f.entity)) {
		return nil, false
	}
	if !bind(pat.Value, f.value) {
		return nil, false
	}
	return nb, true
}

func resolve(b binding, t Term) (element.Value, bool) {
	if !t.IsVar {
		return t.Const, true
	}
	v, ok := b[t.Var]
	return v, ok
}

// HoldsAt returns every value (asserted or derived) of attr(entity) valid
// at t, sorted by value key for determinism.
func (r *Reasoner) HoldsAt(entity, attr string, t temporal.Instant) []element.Value {
	r.mu.Lock()
	if r.dirty {
		r.materializeLocked()
	}
	var out []element.Value
	for k, set := range r.derived {
		if k.entity == entity && k.attr == attr && set.Contains(t) {
			out = append(out, r.derivedVals[k])
		}
	}
	r.mu.Unlock()
	if f, ok := r.store.ValidAt(entity, attr, t); ok {
		dup := false
		for _, v := range out {
			if v.Equal(f.Value) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, f.Value)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// DerivedAt returns every derived fact valid at t as Fact values (marked
// Derived), sorted by (attribute, entity, value).
func (r *Reasoner) DerivedAt(t temporal.Instant) []*element.Fact {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dirty {
		r.materializeLocked()
	}
	var out []*element.Fact
	for k, set := range r.derived {
		for _, iv := range set.Intervals() {
			if iv.Contains(t) {
				f := element.NewFact(k.entity, k.attr, r.derivedVals[k], iv)
				f.Derived = true
				f.Source = "reasoner"
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Attribute != b.Attribute {
			return a.Attribute < b.Attribute
		}
		if a.Entity != b.Entity {
			return a.Entity < b.Entity
		}
		return a.Value.Key() < b.Value.Key()
	})
	return out
}

// EntitiesOfClassAt returns the entities whose type (asserted or derived)
// is the class at instant t, sorted.
func (r *Reasoner) EntitiesOfClassAt(class string, t temporal.Instant) []string {
	r.mu.Lock()
	if r.dirty {
		r.materializeLocked()
	}
	set := map[string]bool{}
	for k, ivs := range r.derived {
		if k.attr == TypeAttribute && ivs.Contains(t) {
			if s, ok := r.derivedVals[k].AsString(); ok && s == class {
				set[k.entity] = true
			}
		}
	}
	r.mu.Unlock()
	for _, f := range r.store.AsOfByAttribute(TypeAttribute, t) {
		if s, ok := f.Value.AsString(); ok && s == class {
			set[f.Entity] = true
		}
	}
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// DerivedCount returns the number of derived atomic facts after ensuring
// materialization.
func (r *Reasoner) DerivedCount() int { return r.Materialize() }
