package cql

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
	"repro/internal/window"
)

// TestAggregateIncrementalEqualsRecompute drives the incremental
// aggregation operator with random insert/delete deltas and checks after
// every delta that the maintained result relation equals an aggregate
// recomputed from scratch over the current input multiset.
func TestAggregateIncrementalEqualsRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	products := []string{"a", "b", "c", "d"}

	for trial := 0; trial < 60; trial++ {
		op := NewAggregate([]string{"product"},
			AggSpec{Func: Count, As: "n"},
			AggSpec{Func: Sum, Field: "amount", As: "sum"},
			AggSpec{Func: Min, Field: "amount", As: "lo"},
			AggSpec{Func: Max, Field: "amount", As: "hi"},
		)
		result := NewMultiset()
		input := NewMultiset()

		for step := 0; step < 40; step++ {
			var d Delta
			// Random inserts.
			for i := rng.Intn(4); i > 0; i-- {
				d.Inserts = append(d.Inserts,
					tup(products[rng.Intn(len(products))], float64(rng.Intn(10))))
			}
			// Random deletes of currently present tuples: distinct
			// occurrences, so the delta is well-formed (a delete per
			// multiset occurrence at most).
			cur := input.Tuples()
			rng.Shuffle(len(cur), func(i, j int) { cur[i], cur[j] = cur[j], cur[i] })
			for i := 0; i < rng.Intn(3) && i < len(cur); i++ {
				d.Deletes = append(d.Deletes, cur[i])
			}
			input.Apply(d)
			result.Apply(op.Apply(d))

			want := recomputeAggregate(input.Tuples())
			got := renderRelation(result.Tuples())
			if got != want {
				t.Fatalf("trial %d step %d:\n got %s\nwant %s", trial, step, got, want)
			}
		}
	}
}

// recomputeAggregate computes the expected aggregate rows from scratch.
func recomputeAggregate(tuples []*element.Tuple) string {
	type agg struct {
		n   int
		sum float64
		lo  float64
		hi  float64
	}
	groups := map[string]*agg{}
	for _, tp := range tuples {
		p := tp.MustGet("product").MustString()
		v := tp.MustGet("amount").MustFloat()
		g := groups[p]
		if g == nil {
			g = &agg{lo: v, hi: v}
			groups[p] = g
		} else {
			if v < g.lo {
				g.lo = v
			}
			if v > g.hi {
				g.hi = v
			}
		}
		g.n++
		g.sum += v
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		g := groups[k]
		sb.WriteString(renderRow(k, g.n, g.sum, g.lo, g.hi))
	}
	return sb.String()
}

func renderRelation(tuples []*element.Tuple) string {
	rows := make([]string, 0, len(tuples))
	for _, tp := range tuples {
		rows = append(rows, renderRow(
			tp.MustGet("product").MustString(),
			int(tp.MustGet("n").MustInt()),
			tp.MustGet("sum").MustFloat(),
			tp.MustGet("lo").MustFloat(),
			tp.MustGet("hi").MustFloat()))
	}
	sort.Strings(rows)
	return strings.Join(rows, "")
}

func renderRow(p string, n int, sum, lo, hi float64) string {
	return strings.Join([]string{p,
		element.Int(int64(n)).Key(),
		element.Float(sum).Key(),
		element.Float(lo).Key(),
		element.Float(hi).Key(), "|"}, "/")
}

// TestJoinIncrementalEqualsRecompute drives the incremental join with
// random two-sided deltas and checks the maintained output against a
// nested-loop join of the current side multisets.
func TestJoinIncrementalEqualsRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	keys := []string{"k1", "k2", "k3"}

	rightSchema := element.NewSchema(
		element.Field{Name: "product", Kind: element.KindString},
		element.Field{Name: "class", Kind: element.KindString},
	)
	rightTup := func(k, c string) *element.Tuple {
		return element.NewTuple(rightSchema, element.String(k), element.String(c))
	}

	for trial := 0; trial < 60; trial++ {
		j := NewJoin([]string{"product"}, []string{"product"}, "r_")
		left := NewMultiset()
		right := NewMultiset()
		out := NewMultiset()

		for step := 0; step < 30; step++ {
			var d Delta
			isLeft := rng.Intn(2) == 0
			side := left
			if !isLeft {
				side = right
			}
			for i := rng.Intn(3); i > 0; i-- {
				if isLeft {
					d.Inserts = append(d.Inserts, tup(keys[rng.Intn(len(keys))], float64(rng.Intn(5))))
				} else {
					d.Inserts = append(d.Inserts, rightTup(keys[rng.Intn(len(keys))], string(rune('x'+rng.Intn(3)))))
				}
			}
			cur := side.Tuples()
			rng.Shuffle(len(cur), func(i, j int) { cur[i], cur[j] = cur[j], cur[i] })
			for i := 0; i < rng.Intn(2) && i < len(cur); i++ {
				d.Deletes = append(d.Deletes, cur[i])
			}
			side.Apply(d)
			if isLeft {
				out.Apply(j.ApplyLeft(d))
			} else {
				out.Apply(j.ApplyRight(d))
			}

			want := naiveJoin(left.Tuples(), right.Tuples())
			got := renderTupleBag(out.Tuples())
			if got != want {
				t.Fatalf("trial %d step %d:\n got %s\nwant %s", trial, step, got, want)
			}
		}
	}
}

func naiveJoin(left, right []*element.Tuple) string {
	var rows []string
	for _, l := range left {
		for _, r := range right {
			if l.MustGet("product").Equal(r.MustGet("product")) {
				rows = append(rows, l.Key()+"×"+r.Key())
			}
		}
	}
	sort.Strings(rows)
	return strings.Join(rows, ";")
}

func renderTupleBag(tuples []*element.Tuple) string {
	rows := make([]string, 0, len(tuples))
	for _, tp := range tuples {
		// Joined tuples are left fields then prefixed right fields;
		// reconstruct the pair key for comparison with the naive join.
		l := tp.MustGet("product").Key() + "\x1f" + tp.MustGet("amount").Key()
		r := tp.MustGet("r_product").Key() + "\x1f" + tp.MustGet("r_class").Key()
		rows = append(rows, l+"×"+r)
	}
	sort.Strings(rows)
	return strings.Join(rows, ";")
}

// TestStreamToRelationPartition checks the windows-partition-the-stream
// property: with tumbling time windows, every element is inserted into
// the relation exactly once across all deltas, and net relation size
// after the final watermark equals the last window's population.
func TestStreamToRelationPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 30 + rng.Intn(30)
		els := make([]*element.Element, n)
		ts := int64(0)
		for i := range els {
			ts += int64(rng.Intn(5))
			els[i] = sale(ts, "p", float64(i)) // distinct amounts → distinct tuples
			els[i].Seq = uint64(i)
		}
		s2r := NewStreamToRelation(window.NewTumblingTime(10), false)
		inserted := map[string]int{}
		apply := func(ds []Delta) {
			for _, d := range ds {
				for _, tp := range d.Inserts {
					inserted[tp.Key()]++
				}
			}
		}
		for _, el := range els {
			apply(s2r.Observe(el))
			apply(s2r.AdvanceTo(el.Timestamp))
		}
		apply(s2r.AdvanceTo(temporal.Instant(ts + 100)))
		if len(inserted) != n {
			t.Fatalf("trial %d: %d distinct tuples inserted, want %d", trial, len(inserted), n)
		}
		for k, c := range inserted {
			if c != 1 {
				t.Fatalf("trial %d: tuple %q inserted %d times (windows must partition)", trial, k, c)
			}
		}
	}
}
