package cql

import (
	"repro/internal/element"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/window"
)

// EmitMode selects the relation-to-stream operator of a query.
type EmitMode int

// CQL relation-to-stream operators.
const (
	// IStream emits each tuple when it enters the result relation.
	IStream EmitMode = iota
	// DStream emits each tuple when it leaves the result relation.
	DStream
	// RStream emits the entire result relation at every change instant.
	RStream
)

// String names the emit mode.
func (m EmitMode) String() string {
	switch m {
	case IStream:
		return "istream"
	case DStream:
		return "dstream"
	}
	return "rstream"
}

// StreamToRelation converts the panes of a windower into relation deltas:
// each pane replaces the previous window content. Keyed windowers
// (sessions, predicate windows) contribute each pane as a standalone batch
// of insertions followed by deletions at the same instant — a session's
// tuples enter and leave the relation when the session closes, which makes
// downstream aggregation see exactly one session at a time.
type StreamToRelation struct {
	w       window.Windower
	current *Multiset
	keyed   bool
}

// NewStreamToRelation wraps a windower. Set keyed for windowers that emit
// per-key panes (sessions, predicate windows) so panes are treated as
// independent batches rather than snapshots of one global window.
func NewStreamToRelation(w window.Windower, keyed bool) *StreamToRelation {
	return &StreamToRelation{w: w, current: NewMultiset(), keyed: keyed}
}

// Observe feeds an element, returning deltas for any panes that closed.
func (s *StreamToRelation) Observe(el *element.Element) []Delta {
	return s.panesToDeltas(s.w.Observe(el))
}

// AdvanceTo advances the watermark, returning deltas for closed panes.
func (s *StreamToRelation) AdvanceTo(wm temporal.Instant) []Delta {
	return s.panesToDeltas(s.w.AdvanceTo(wm))
}

// Pending exposes the windower's buffered element count.
func (s *StreamToRelation) Pending() int { return s.w.Pending() }

func (s *StreamToRelation) panesToDeltas(panes []window.Pane) []Delta {
	if len(panes) == 0 {
		return nil
	}
	out := make([]Delta, 0, len(panes))
	for _, p := range panes {
		tuples := make([]*element.Tuple, len(p.Elements))
		for i, el := range p.Elements {
			tuples[i] = el.Tuple
		}
		if s.keyed {
			// Batch semantics: insert the pane, then delete it at the same
			// instant so the relation returns to empty between panes.
			d := Delta{At: p.Window.End, Inserts: tuples, Deletes: nil}
			out = append(out, d, Delta{At: p.Window.End, Deletes: tuples})
			continue
		}
		out = append(out, s.current.DiffToDelta(tuples, p.Window.End))
	}
	return out
}

// Query is one continuous CQL query: stream → window → relational chain →
// stream. It implements stream.Operator so it can sit in a pipeline or be
// driven by the engine.
type Query struct {
	// Name labels output elements' Stream field.
	Name string
	// Source selects which input stream the query consumes; empty consumes
	// every element.
	Source string

	s2r   *StreamToRelation
	chain *Chain
	mode  EmitMode
	// result holds the post-chain relation, needed for RStream.
	result *Multiset
	seq    uint64
}

// NewQuery builds a continuous query over the given windower.
func NewQuery(name, source string, w window.Windower, keyed bool, mode EmitMode, ops ...RelOp) *Query {
	return &Query{
		Name:   name,
		Source: source,
		s2r:    NewStreamToRelation(w, keyed),
		chain:  NewChain(ops...),
		mode:   mode,
		result: NewMultiset(),
	}
}

// Process implements stream.Operator: elements feed the window, watermarks
// advance it, and emitted deltas become output elements per the emit mode.
func (q *Query) Process(m stream.Message) []stream.Message {
	var deltas []Delta
	if m.IsWatermark {
		deltas = q.s2r.AdvanceTo(m.Watermark)
	} else {
		if q.Source != "" && m.El.Stream != q.Source {
			return nil
		}
		deltas = q.s2r.Observe(m.El)
	}
	var out []stream.Message
	for _, d := range deltas {
		res := q.chain.Apply(d)
		q.result.Apply(res)
		switch q.mode {
		case IStream:
			for _, t := range res.Inserts {
				out = append(out, q.emit(t, res.At))
			}
		case DStream:
			for _, t := range res.Deletes {
				out = append(out, q.emit(t, res.At))
			}
		case RStream:
			if !res.IsEmpty() {
				for _, t := range q.result.Tuples() {
					out = append(out, q.emit(t, res.At))
				}
			}
		}
	}
	if m.IsWatermark {
		out = append(out, m)
	}
	return out
}

// Pending exposes the window buffer size (the E1 resource metric).
func (q *Query) Pending() int { return q.s2r.Pending() }

// Result returns the current post-chain relation contents.
func (q *Query) Result() []*element.Tuple { return q.result.Tuples() }

func (q *Query) emit(t *element.Tuple, at temporal.Instant) stream.Message {
	el := element.New(q.Name, at, t)
	el.Seq = q.seq
	q.seq++
	return stream.ElementMsg(el)
}
