package cql

import (
	"testing"

	"repro/internal/element"
	"repro/internal/stream"
	"repro/internal/window"
)

func TestDistinctOp(t *testing.T) {
	op := NewDistinct()
	a, b := tup("a", 1), tup("b", 2)

	d := op.Apply(Delta{Inserts: []*element.Tuple{a, a, b}})
	if len(d.Inserts) != 2 {
		t.Fatalf("first inserts: %+v", d)
	}
	// Removing one duplicate changes nothing.
	d = op.Apply(Delta{Deletes: []*element.Tuple{a}})
	if !d.IsEmpty() {
		t.Fatalf("dup removal should be invisible: %+v", d)
	}
	// Removing the last occurrence retracts.
	d = op.Apply(Delta{Deletes: []*element.Tuple{a}})
	if len(d.Deletes) != 1 || len(d.Inserts) != 0 {
		t.Fatalf("last removal: %+v", d)
	}
	// Untracked delete is ignored.
	d = op.Apply(Delta{Deletes: []*element.Tuple{tup("ghost", 9)}})
	if !d.IsEmpty() {
		t.Fatalf("ghost delete: %+v", d)
	}
	// Reinsertion after removal re-emits.
	d = op.Apply(Delta{Inserts: []*element.Tuple{a}})
	if len(d.Inserts) != 1 {
		t.Fatalf("reinsert: %+v", d)
	}
}

func TestHavingOp(t *testing.T) {
	agg := NewAggregate([]string{"product"}, AggSpec{Func: Count, As: "n"})
	having := NewHaving(func(tp *element.Tuple) bool { return tp.MustGet("n").MustInt() >= 2 })
	chain := NewChain(agg, having)
	result := NewMultiset()

	// One 'a': below threshold, invisible.
	result.Apply(chain.Apply(Delta{Inserts: []*element.Tuple{tup("a", 1)}}))
	if result.Len() != 0 {
		t.Fatalf("below threshold: %v", result.Tuples())
	}
	// Second 'a': crosses threshold → appears.
	result.Apply(chain.Apply(Delta{Inserts: []*element.Tuple{tup("a", 2)}}))
	if result.Len() != 1 || result.Tuples()[0].MustGet("n").MustInt() != 2 {
		t.Fatalf("crossing up: %v", result.Tuples())
	}
	// Third 'a': stays above, row replaced.
	result.Apply(chain.Apply(Delta{Inserts: []*element.Tuple{tup("a", 3)}}))
	if result.Len() != 1 || result.Tuples()[0].MustGet("n").MustInt() != 3 {
		t.Fatalf("update above threshold: %v", result.Tuples())
	}
	// Delete two: crosses back below → disappears.
	result.Apply(chain.Apply(Delta{Deletes: []*element.Tuple{tup("a", 1), tup("a", 2)}}))
	if result.Len() != 0 {
		t.Fatalf("crossing down: %v", result.Tuples())
	}
}

func TestDistinctInQuery(t *testing.T) {
	// DISTINCT products per window, regardless of sale count.
	q := NewQuery("Products", "Sale", window.NewTumblingTime(10), false, IStream,
		NewProject("product"),
		NewDistinct(),
	)
	var got []string
	collect := func(ms []stream.Message) {
		for _, o := range ms {
			if !o.IsWatermark {
				got = append(got, o.El.MustGet("product").MustString())
			}
		}
	}
	collect(q.Process(stream.ElementMsg(sale(1, "a", 5))))
	collect(q.Process(stream.ElementMsg(sale(2, "a", 6))))
	collect(q.Process(stream.ElementMsg(sale(3, "b", 7))))
	collect(q.Process(stream.WatermarkMsg(10)))
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("distinct query: %v", got)
	}
}
