package cql

import (
	"testing"

	"repro/internal/element"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/window"
)

var saleSchema = element.NewSchema(
	element.Field{Name: "product", Kind: element.KindString},
	element.Field{Name: "amount", Kind: element.KindFloat},
)

func sale(ts int64, product string, amount float64) *element.Element {
	e := element.New("Sale", temporal.Instant(ts),
		element.NewTuple(saleSchema, element.String(product), element.Float(amount)))
	e.Seq = uint64(ts)
	return e
}

func tup(product string, amount float64) *element.Tuple {
	return element.NewTuple(saleSchema, element.String(product), element.Float(amount))
}

func TestMultisetBasics(t *testing.T) {
	m := NewMultiset()
	a := tup("a", 1)
	m.Add(a)
	m.Add(a)
	m.Add(tup("b", 2))
	if m.Len() != 3 || m.Count(a) != 2 {
		t.Fatalf("len=%d count=%d", m.Len(), m.Count(a))
	}
	if !m.Remove(a) || m.Count(a) != 1 {
		t.Error("remove")
	}
	if m.Remove(tup("zzz", 0)) {
		t.Error("removing absent tuple should report false")
	}
	ts := m.Tuples()
	if len(ts) != 2 {
		t.Fatalf("tuples: %v", ts)
	}
}

func TestMultisetDiffToDelta(t *testing.T) {
	m := NewMultiset()
	a, b, c := tup("a", 1), tup("b", 2), tup("c", 3)
	d := m.DiffToDelta([]*element.Tuple{a, b}, 10)
	if len(d.Inserts) != 2 || len(d.Deletes) != 0 || d.At != 10 {
		t.Fatalf("initial diff: %+v", d)
	}
	d = m.DiffToDelta([]*element.Tuple{b, c, c}, 20)
	if len(d.Inserts) != 2 || len(d.Deletes) != 1 {
		t.Fatalf("second diff: ins=%d del=%d", len(d.Inserts), len(d.Deletes))
	}
	if m.Len() != 3 || m.Count(c) != 2 || m.Count(a) != 0 {
		t.Fatalf("after diff: len=%d", m.Len())
	}
	d = m.DiffToDelta(nil, 30)
	if len(d.Deletes) != 3 || m.Len() != 0 {
		t.Fatalf("clearing diff: %+v", d)
	}
}

func TestSelectOp(t *testing.T) {
	op := NewSelect(func(tp *element.Tuple) bool { return tp.MustGet("amount").MustFloat() > 1 })
	d := op.Apply(Delta{Inserts: []*element.Tuple{tup("a", 1), tup("b", 2)}, Deletes: []*element.Tuple{tup("c", 3), tup("d", 0.5)}})
	if len(d.Inserts) != 1 || len(d.Deletes) != 1 {
		t.Fatalf("select: %+v", d)
	}
}

func TestProjectOp(t *testing.T) {
	op := NewProject("product")
	d := op.Apply(Delta{Inserts: []*element.Tuple{tup("a", 1), tup("a", 2)}})
	if len(d.Inserts) != 2 {
		t.Fatal("project should preserve duplicates")
	}
	if d.Inserts[0].Schema().Len() != 1 || d.Inserts[0].MustGet("product").MustString() != "a" {
		t.Fatalf("projected tuple: %v", d.Inserts[0])
	}
	if !d.Inserts[0].Equal(d.Inserts[1]) {
		t.Error("projection collapses to equal tuples")
	}
}

func TestAggregateCountSum(t *testing.T) {
	op := NewAggregate([]string{"product"},
		AggSpec{Func: Count, As: "n"},
		AggSpec{Func: Sum, Field: "amount", As: "total"},
	)
	d := op.Apply(Delta{Inserts: []*element.Tuple{tup("a", 1), tup("a", 2), tup("b", 5)}})
	if len(d.Inserts) != 2 || len(d.Deletes) != 0 {
		t.Fatalf("first agg: %+v", d)
	}
	// groups sorted by key: a then b
	if d.Inserts[0].MustGet("n").MustInt() != 2 || d.Inserts[0].MustGet("total").MustFloat() != 3 {
		t.Fatalf("group a: %v", d.Inserts[0])
	}
	// Incremental update: delete one 'a' sale.
	d = op.Apply(Delta{Deletes: []*element.Tuple{tup("a", 1)}})
	if len(d.Deletes) != 1 || len(d.Inserts) != 1 {
		t.Fatalf("update agg: %+v", d)
	}
	if d.Inserts[0].MustGet("n").MustInt() != 1 || d.Inserts[0].MustGet("total").MustFloat() != 2 {
		t.Fatalf("updated group a: %v", d.Inserts[0])
	}
	// Remove remaining a: group disappears (delete only).
	d = op.Apply(Delta{Deletes: []*element.Tuple{tup("a", 2)}})
	if len(d.Deletes) != 1 || len(d.Inserts) != 0 {
		t.Fatalf("group vanish: %+v", d)
	}
}

func TestAggregateAvgMinMax(t *testing.T) {
	op := NewAggregate(nil,
		AggSpec{Func: Avg, Field: "amount", As: "avg"},
		AggSpec{Func: Min, Field: "amount", As: "lo"},
		AggSpec{Func: Max, Field: "amount", As: "hi"},
	)
	d := op.Apply(Delta{Inserts: []*element.Tuple{tup("a", 1), tup("b", 2), tup("c", 6)}})
	if len(d.Inserts) != 1 {
		t.Fatalf("agg: %+v", d)
	}
	r := d.Inserts[0]
	if r.MustGet("avg").MustFloat() != 3 || r.MustGet("lo").MustFloat() != 1 || r.MustGet("hi").MustFloat() != 6 {
		t.Fatalf("agg values: %v", r)
	}
	// Deleting the max forces min/max recomputation.
	d = op.Apply(Delta{Deletes: []*element.Tuple{tup("c", 6)}})
	r = d.Inserts[0]
	if r.MustGet("hi").MustFloat() != 2 || r.MustGet("lo").MustFloat() != 1 || r.MustGet("avg").MustFloat() != 1.5 {
		t.Fatalf("after delete: %v", r)
	}
}

func TestAggregateDeleteUnknownGroupIgnored(t *testing.T) {
	op := NewAggregate([]string{"product"}, AggSpec{Func: Count, As: "n"})
	d := op.Apply(Delta{Deletes: []*element.Tuple{tup("ghost", 1)}})
	if !d.IsEmpty() {
		t.Fatalf("ghost delete: %+v", d)
	}
}

func TestJoinOp(t *testing.T) {
	classSchema := element.NewSchema(
		element.Field{Name: "product", Kind: element.KindString},
		element.Field{Name: "class", Kind: element.KindString},
	)
	cls := func(p, c string) *element.Tuple {
		return element.NewTuple(classSchema, element.String(p), element.String(c))
	}
	j := NewJoin([]string{"product"}, []string{"product"}, "r_")

	// Right side first: product classifications.
	d := j.ApplyRight(Delta{Inserts: []*element.Tuple{cls("a", "books"), cls("b", "toys")}})
	if !d.IsEmpty() {
		t.Fatal("no left side yet")
	}
	// Left inserts join immediately.
	d = j.ApplyLeft(Delta{Inserts: []*element.Tuple{tup("a", 5), tup("z", 1)}})
	if len(d.Inserts) != 1 {
		t.Fatalf("join inserts: %+v", d)
	}
	out := d.Inserts[0]
	if out.MustGet("product").MustString() != "a" || out.MustGet("r_class").MustString() != "books" {
		t.Fatalf("joined tuple: %v", out)
	}
	// Right-side reclassification: delete old, insert new → output delta
	// retracts the old join result and adds the new one.
	d = j.ApplyRight(Delta{Deletes: []*element.Tuple{cls("a", "books")}, Inserts: []*element.Tuple{cls("a", "fiction")}})
	if len(d.Deletes) != 1 || len(d.Inserts) != 1 {
		t.Fatalf("reclassification: %+v", d)
	}
	if d.Inserts[0].MustGet("r_class").MustString() != "fiction" {
		t.Fatalf("new class: %v", d.Inserts[0])
	}
	// Duplicate left tuples multiply.
	d = j.ApplyLeft(Delta{Inserts: []*element.Tuple{tup("a", 5)}})
	if len(d.Inserts) != 1 {
		t.Fatalf("dup insert: %+v", d)
	}
	d = j.ApplyRight(Delta{Deletes: []*element.Tuple{cls("a", "fiction")}})
	if len(d.Deletes) != 2 {
		t.Fatalf("delete should retract both join results: %+v", d)
	}
}

func TestChainShortCircuit(t *testing.T) {
	sel := NewSelect(func(*element.Tuple) bool { return false })
	calls := 0
	probe := relOpFunc(func(d Delta) Delta { calls++; return d })
	c := NewChain(sel, probe)
	c.Apply(Delta{Inserts: []*element.Tuple{tup("a", 1)}})
	if calls != 0 {
		t.Error("chain should stop on empty delta")
	}
}

type relOpFunc func(Delta) Delta

func (f relOpFunc) Apply(d Delta) Delta { return f(d) }

func TestQueryIStreamTumblingAggregate(t *testing.T) {
	// Per-product sales totals over 10-unit tumbling windows (the paper's
	// §3.1 "current trend of sales" query).
	q := NewQuery("Trend", "Sale", window.NewTumblingTime(10), false, IStream,
		NewAggregate([]string{"product"},
			AggSpec{Func: Sum, Field: "amount", As: "total"}),
	)
	els := []*element.Element{
		sale(1, "a", 5), sale(3, "b", 2), sale(7, "a", 1), // window [0,10)
		sale(12, "a", 10), // window [10,20)
	}
	var got []*element.Element
	for _, e := range els {
		for _, m := range q.Process(stream.ElementMsg(e)) {
			if !m.IsWatermark {
				got = append(got, m.El)
			}
		}
	}
	for _, m := range q.Process(stream.WatermarkMsg(20)) {
		if !m.IsWatermark {
			got = append(got, m.El)
		}
	}
	// Window [0,10) emits totals a=6, b=2; window [10,20) replaces the
	// relation: new inserts a=10 (b gone → only delete, not in IStream).
	if len(got) != 3 {
		t.Fatalf("emissions: %v", got)
	}
	if got[0].MustGet("total").MustFloat() != 6 || got[0].MustGet("product").MustString() != "a" {
		t.Fatalf("first: %v", got[0])
	}
	if got[2].MustGet("total").MustFloat() != 10 {
		t.Fatalf("third: %v", got[2])
	}
	if got[0].Stream != "Trend" || got[0].Timestamp != 10 {
		t.Fatalf("metadata: %v", got[0])
	}
}

func TestQueryDStreamAndRStream(t *testing.T) {
	mk := func(mode EmitMode) *Query {
		return NewQuery("Q", "", window.NewTumblingTime(10), false, mode)
	}
	drive := func(q *Query) (els []*element.Element) {
		msgs := []stream.Message{
			stream.ElementMsg(sale(1, "a", 1)),
			stream.WatermarkMsg(10),
			stream.ElementMsg(sale(11, "b", 2)),
			stream.WatermarkMsg(20),
			stream.WatermarkMsg(30),
		}
		for _, m := range msgs {
			for _, o := range q.Process(m) {
				if !o.IsWatermark {
					els = append(els, o.El)
				}
			}
		}
		return els
	}
	d := drive(mk(DStream))
	// 'a' leaves the relation at 20 (window replacement), 'b' at 30.
	if len(d) != 2 || d[0].MustGet("product").MustString() != "a" || d[0].Timestamp != 20 {
		t.Fatalf("dstream: %v", d)
	}
	r := drive(mk(RStream))
	// RStream emits the full relation whenever it changes: at 10 ({a}),
	// at 20 ({b}); at 30 the relation empties (change but nothing to emit).
	if len(r) != 2 || r[0].MustGet("product").MustString() != "a" || r[1].MustGet("product").MustString() != "b" {
		t.Fatalf("rstream: %v", r)
	}
}

func TestQuerySourceFilterAndPending(t *testing.T) {
	q := NewQuery("Q", "Sale", window.NewTumblingTime(10), false, IStream)
	other := element.New("Other", 1, tup("x", 1))
	if out := q.Process(stream.ElementMsg(other)); out != nil {
		t.Error("foreign stream elements should be ignored")
	}
	q.Process(stream.ElementMsg(sale(1, "a", 1)))
	if q.Pending() != 1 {
		t.Errorf("pending: %d", q.Pending())
	}
	msgs := q.Process(stream.WatermarkMsg(10))
	if len(msgs) == 0 || !msgs[len(msgs)-1].IsWatermark {
		t.Error("watermark should propagate")
	}
	if len(q.Result()) != 1 {
		t.Errorf("result relation: %v", q.Result())
	}
}

func TestQueryKeyedSessionBatches(t *testing.T) {
	// Session windows as batch semantics: each session aggregates alone.
	key := func(e *element.Element) string { return e.MustGet("product").MustString() }
	q := NewQuery("Sessions", "Sale", window.NewSession(5, key), true, IStream,
		NewAggregate([]string{"product"}, AggSpec{Func: Count, As: "events"}),
	)
	els := []*element.Element{
		sale(0, "u1", 1), sale(2, "u1", 1), sale(3, "u2", 1), sale(20, "u1", 1),
	}
	var got []*element.Element
	for _, e := range els {
		for _, m := range q.Process(stream.ElementMsg(e)) {
			if !m.IsWatermark {
				got = append(got, m.El)
			}
		}
	}
	for _, m := range q.Process(stream.WatermarkMsg(100)) {
		if !m.IsWatermark {
			got = append(got, m.El)
		}
	}
	// Sessions: u1 [0,2] (2 events), u2 [3] (1), u1 [20] (1).
	if len(got) != 3 {
		t.Fatalf("session emissions: %v", got)
	}
	if got[0].MustGet("events").MustInt() != 2 {
		t.Fatalf("first session: %v", got[0])
	}
}

func TestEmitModeStrings(t *testing.T) {
	if IStream.String() != "istream" || DStream.String() != "dstream" || RStream.String() != "rstream" {
		t.Error("emit mode strings")
	}
	if Count.String() != "count" || Max.String() != "max" {
		t.Error("agg strings")
	}
}
