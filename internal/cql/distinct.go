package cql

import (
	"repro/internal/element"
)

// DistinctOp collapses the multiset to a set: a tuple enters the output
// when its multiplicity rises from zero and leaves when it returns to
// zero. SELECT DISTINCT in CQL terms.
type DistinctOp struct {
	counts map[string]*msEntry
}

// NewDistinct returns a distinct operator.
func NewDistinct() *DistinctOp { return &DistinctOp{counts: make(map[string]*msEntry)} }

// Apply implements RelOp.
func (o *DistinctOp) Apply(d Delta) Delta {
	out := Delta{At: d.At}
	for _, t := range d.Deletes {
		k := t.Key()
		e := o.counts[k]
		if e == nil {
			continue // delete of an untracked tuple: ignore
		}
		e.count--
		if e.count == 0 {
			delete(o.counts, k)
			out.Deletes = append(out.Deletes, e.tuple)
		}
	}
	for _, t := range d.Inserts {
		k := t.Key()
		if e := o.counts[k]; e != nil {
			e.count++
			continue
		}
		o.counts[k] = &msEntry{tuple: t, count: 1}
		out.Inserts = append(out.Inserts, t)
	}
	return out
}

// HavingOp filters aggregate rows after grouping: it passes inserts and
// deletes whose tuples satisfy the predicate. Because AggregateOp always
// retracts a group's previous row before inserting the new one, a group
// crossing the predicate boundary produces the correct delta (retract
// without reinsert, or insert without prior retract).
type HavingOp struct {
	Pred func(*element.Tuple) bool
}

// NewHaving returns a post-aggregation filter.
func NewHaving(pred func(*element.Tuple) bool) *HavingOp { return &HavingOp{Pred: pred} }

// Apply implements RelOp.
func (o *HavingOp) Apply(d Delta) Delta {
	out := Delta{At: d.At}
	for _, t := range d.Deletes {
		if o.Pred(t) {
			out.Deletes = append(out.Deletes, t)
		}
	}
	for _, t := range d.Inserts {
		if o.Pred(t) {
			out.Inserts = append(out.Inserts, t)
		}
	}
	return out
}
