package cql

import (
	"fmt"
	"sort"

	"repro/internal/element"
)

// RelOp is an incremental relation-to-relation operator: it maps input
// deltas to output deltas while maintaining whatever internal state the
// operator needs. Operators are driven single-threaded.
type RelOp interface {
	Apply(d Delta) Delta
}

// SelectOp filters tuples by a predicate. Stateless: a tuple's membership
// in the output depends only on itself.
type SelectOp struct {
	Pred func(*element.Tuple) bool
}

// NewSelect returns a selection operator.
func NewSelect(pred func(*element.Tuple) bool) *SelectOp { return &SelectOp{Pred: pred} }

// Apply implements RelOp.
func (o *SelectOp) Apply(d Delta) Delta {
	out := Delta{At: d.At}
	for _, t := range d.Inserts {
		if o.Pred(t) {
			out.Inserts = append(out.Inserts, t)
		}
	}
	for _, t := range d.Deletes {
		if o.Pred(t) {
			out.Deletes = append(out.Deletes, t)
		}
	}
	return out
}

// ProjectOp projects tuples onto a subset of fields (multiset semantics:
// duplicates are preserved).
type ProjectOp struct {
	fields []string
	schema *element.Schema // lazily derived from the first tuple
}

// NewProject returns a projection onto the named fields.
func NewProject(fields ...string) *ProjectOp { return &ProjectOp{fields: fields} }

// Apply implements RelOp.
func (o *ProjectOp) Apply(d Delta) Delta {
	out := Delta{At: d.At}
	for _, t := range d.Inserts {
		out.Inserts = append(out.Inserts, o.project(t))
	}
	for _, t := range d.Deletes {
		out.Deletes = append(out.Deletes, o.project(t))
	}
	return out
}

func (o *ProjectOp) project(t *element.Tuple) *element.Tuple {
	if o.schema == nil {
		s, err := t.Schema().Project(o.fields...)
		if err != nil {
			panic(fmt.Sprintf("cql: project: %v", err))
		}
		o.schema = s
	}
	vals := make([]element.Value, len(o.fields))
	for i, f := range o.fields {
		vals[i] = t.MustGet(f)
	}
	return element.NewTuple(o.schema, vals...)
}

// AggFunc enumerates the supported aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	Count AggFunc = iota
	Sum
	Avg
	Min
	Max
)

var aggNames = [...]string{Count: "count", Sum: "sum", Avg: "avg", Min: "min", Max: "max"}

// String names the function.
func (f AggFunc) String() string {
	if int(f) < len(aggNames) {
		return aggNames[f]
	}
	return fmt.Sprintf("agg(%d)", int(f))
}

// AggSpec is one aggregate column: Func applied to Field, emitted as As.
// Count ignores Field.
type AggSpec struct {
	Func  AggFunc
	Field string
	As    string
}

// AggregateOp maintains grouped aggregates incrementally. For every input
// delta it emits the retraction of each changed group's previous aggregate
// tuple and the insertion of the new one — the standard incremental
// view-maintenance contract.
type AggregateOp struct {
	groupBy []string
	specs   []AggSpec
	groups  map[string]*groupState
	schema  *element.Schema
}

type groupState struct {
	keyVals []element.Value
	n       int
	sums    []float64
	// values tracks multiplicity per value key for Min/Max recomputation
	// under deletion; one map per spec (nil for non-min/max specs).
	values []map[string]*valEntry
	last   *element.Tuple // previously emitted aggregate tuple
}

type valEntry struct {
	v element.Value
	n int
}

// NewAggregate returns an aggregation operator grouping by the given
// fields. At least one spec is required; spec output names must be unique
// and disjoint from the group-by fields.
func NewAggregate(groupBy []string, specs ...AggSpec) *AggregateOp {
	if len(specs) == 0 {
		panic("cql: aggregate needs at least one spec")
	}
	return &AggregateOp{groupBy: groupBy, specs: specs, groups: make(map[string]*groupState)}
}

// Apply implements RelOp.
func (o *AggregateOp) Apply(d Delta) Delta {
	changed := make(map[string]bool)
	for _, t := range d.Deletes {
		o.update(t, -1, changed)
	}
	for _, t := range d.Inserts {
		o.update(t, +1, changed)
	}
	keys := make([]string, 0, len(changed))
	for k := range changed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := Delta{At: d.At}
	for _, k := range keys {
		g := o.groups[k]
		if g == nil {
			continue // group vanished and was never emitted
		}
		if g.last != nil {
			out.Deletes = append(out.Deletes, g.last)
		}
		if g.n == 0 {
			delete(o.groups, k)
			continue
		}
		nt := o.aggTuple(g)
		g.last = nt
		out.Inserts = append(out.Inserts, nt)
	}
	return out
}

func (o *AggregateOp) update(t *element.Tuple, sign int, changed map[string]bool) {
	keyVals := make([]element.Value, len(o.groupBy))
	keyParts := make([]string, len(o.groupBy))
	for i, f := range o.groupBy {
		keyVals[i] = t.MustGet(f)
		keyParts[i] = keyVals[i].Key()
	}
	k := joinKey(keyParts)
	g := o.groups[k]
	if g == nil {
		if sign < 0 {
			return // deleting from a non-existent group: ignore
		}
		g = &groupState{
			keyVals: keyVals,
			sums:    make([]float64, len(o.specs)),
			values:  make([]map[string]*valEntry, len(o.specs)),
		}
		for i, sp := range o.specs {
			if sp.Func == Min || sp.Func == Max {
				g.values[i] = make(map[string]*valEntry)
			}
		}
		o.groups[k] = g
	}
	g.n += sign
	for i, sp := range o.specs {
		switch sp.Func {
		case Count:
			// handled by g.n
		case Sum, Avg:
			f, ok := t.MustGet(sp.Field).AsFloat()
			if ok {
				g.sums[i] += float64(sign) * f
			}
		case Min, Max:
			v := t.MustGet(sp.Field)
			vk := v.Key()
			e := g.values[i][vk]
			if e == nil {
				e = &valEntry{v: v}
				g.values[i][vk] = e
			}
			e.n += sign
			if e.n <= 0 {
				delete(g.values[i], vk)
			}
		}
	}
	changed[k] = true
}

func (o *AggregateOp) aggTuple(g *groupState) *element.Tuple {
	vals := make([]element.Value, 0, len(o.groupBy)+len(o.specs))
	vals = append(vals, g.keyVals...)
	for i, sp := range o.specs {
		switch sp.Func {
		case Count:
			vals = append(vals, element.Int(int64(g.n)))
		case Sum:
			vals = append(vals, element.Float(g.sums[i]))
		case Avg:
			vals = append(vals, element.Float(g.sums[i]/float64(g.n)))
		case Min, Max:
			var best element.Value
			first := true
			for _, e := range g.values[i] {
				if first {
					best = e.v
					first = false
					continue
				}
				c := e.v.Compare(best)
				if (sp.Func == Min && c < 0) || (sp.Func == Max && c > 0) {
					best = e.v
				}
			}
			vals = append(vals, best)
		}
	}
	if o.schema == nil {
		fields := make([]element.Field, 0, len(vals))
		for i, f := range o.groupBy {
			fields = append(fields, element.Field{Name: f, Kind: g.keyVals[i].Kind()})
		}
		for i, sp := range o.specs {
			fields = append(fields, element.Field{Name: sp.As, Kind: vals[len(o.groupBy)+i].Kind()})
		}
		o.schema = element.NewSchema(fields...)
	}
	return element.NewTuple(o.schema, vals...)
}

func joinKey(parts []string) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "\x1f"
		}
		s += p
	}
	return s
}

// JoinOp is an incremental equijoin between two relations. Feed left-side
// deltas through ApplyLeft and right-side deltas through ApplyRight; each
// returns the output delta. Output tuples concatenate the left fields with
// the right fields, the latter renamed with the configured prefix to avoid
// collisions.
type JoinOp struct {
	leftKey, rightKey []string
	rightPrefix       string
	left, right       map[string][]*msEntry
	schema            *element.Schema
}

// NewJoin returns an equijoin matching leftKey fields against rightKey
// fields (same arity). rightPrefix is prepended to every right-side field
// name in the output schema.
func NewJoin(leftKey, rightKey []string, rightPrefix string) *JoinOp {
	if len(leftKey) != len(rightKey) || len(leftKey) == 0 {
		panic("cql: join keys must be non-empty and of equal arity")
	}
	return &JoinOp{
		leftKey: leftKey, rightKey: rightKey, rightPrefix: rightPrefix,
		left: make(map[string][]*msEntry), right: make(map[string][]*msEntry),
	}
}

// ApplyLeft folds a left-side delta and returns the join's output delta.
func (o *JoinOp) ApplyLeft(d Delta) Delta {
	return o.apply(d, o.left, o.right, o.leftKey, true)
}

// ApplyRight folds a right-side delta and returns the join's output delta.
func (o *JoinOp) ApplyRight(d Delta) Delta {
	return o.apply(d, o.right, o.left, o.rightKey, false)
}

func (o *JoinOp) apply(d Delta, own, other map[string][]*msEntry, ownKey []string, isLeft bool) Delta {
	out := Delta{At: d.At}
	for _, t := range d.Deletes {
		k := o.key(t, ownKey)
		removeEntry(own, k, t)
		for _, m := range other[k] {
			for i := 0; i < m.count; i++ {
				out.Deletes = append(out.Deletes, o.joined(t, m.tuple, isLeft))
			}
		}
	}
	for _, t := range d.Inserts {
		k := o.key(t, ownKey)
		addEntry(own, k, t)
		for _, m := range other[k] {
			for i := 0; i < m.count; i++ {
				out.Inserts = append(out.Inserts, o.joined(t, m.tuple, isLeft))
			}
		}
	}
	return out
}

func (o *JoinOp) key(t *element.Tuple, fields []string) string {
	parts := make([]string, len(fields))
	for i, f := range fields {
		parts[i] = t.MustGet(f).Key()
	}
	return joinKey(parts)
}

func addEntry(idx map[string][]*msEntry, k string, t *element.Tuple) {
	tk := t.Key()
	for _, e := range idx[k] {
		if e.tuple.Key() == tk {
			e.count++
			return
		}
	}
	idx[k] = append(idx[k], &msEntry{tuple: t, count: 1})
}

func removeEntry(idx map[string][]*msEntry, k string, t *element.Tuple) {
	tk := t.Key()
	list := idx[k]
	for i, e := range list {
		if e.tuple.Key() == tk {
			e.count--
			if e.count == 0 {
				idx[k] = append(list[:i], list[i+1:]...)
				if len(idx[k]) == 0 {
					delete(idx, k)
				}
			}
			return
		}
	}
}

func (o *JoinOp) joined(a, b *element.Tuple, aIsLeft bool) *element.Tuple {
	l, r := a, b
	if !aIsLeft {
		l, r = b, a
	}
	if o.schema == nil {
		fields := append([]element.Field{}, l.Schema().Fields()...)
		for _, f := range r.Schema().Fields() {
			fields = append(fields, element.Field{Name: o.rightPrefix + f.Name, Kind: f.Kind})
		}
		o.schema = element.NewSchema(fields...)
	}
	vals := append(l.Values(), r.Values()...)
	return element.NewTuple(o.schema, vals...)
}

// Chain composes unary operators into one RelOp.
type Chain struct {
	Ops []RelOp
}

// NewChain composes the given operators.
func NewChain(ops ...RelOp) *Chain { return &Chain{Ops: ops} }

// Apply implements RelOp.
func (c *Chain) Apply(d Delta) Delta {
	for _, op := range c.Ops {
		if d.IsEmpty() {
			return d
		}
		d = op.Apply(d)
	}
	return d
}
