// Package cql implements a CQL-style continuous query layer (Arasu, Babu,
// Widom [3]): stream-to-relation operators backed by the window library,
// incremental relation-to-relation operators (selection, projection,
// aggregation, join), and relation-to-stream operators (IStream, DStream,
// RStream).
//
// This is the DSMS substrate of the paper's §2: "the core of virtually all
// Data Stream Processing Systems". The explicit-state engine
// (internal/core) reuses it for the stream processing component of
// Figure 1, and the benchmarks use it as the window-based baseline the
// paper argues against.
//
// Relations are time-varying multisets of tuples; operators exchange
// Deltas (inserted and deleted tuples) so downstream work is proportional
// to change, not to relation size.
package cql

import (
	"sort"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Delta is an incremental change to a relation at one instant.
type Delta struct {
	// At is the application time of the change (typically a window close).
	At temporal.Instant
	// Inserts are tuples added to the relation.
	Inserts []*element.Tuple
	// Deletes are tuples removed from the relation.
	Deletes []*element.Tuple
}

// IsEmpty reports whether the delta changes nothing.
func (d Delta) IsEmpty() bool { return len(d.Inserts) == 0 && len(d.Deletes) == 0 }

// Multiset is a bag of tuples with counted duplicates, the instantaneous
// relation of CQL. The zero value is not usable; call NewMultiset.
type Multiset struct {
	entries map[string]*msEntry
	size    int
}

type msEntry struct {
	tuple *element.Tuple
	count int
}

// NewMultiset returns an empty multiset.
func NewMultiset() *Multiset { return &Multiset{entries: make(map[string]*msEntry)} }

// Add inserts one occurrence of t.
func (m *Multiset) Add(t *element.Tuple) {
	k := t.Key()
	if e := m.entries[k]; e != nil {
		e.count++
	} else {
		m.entries[k] = &msEntry{tuple: t, count: 1}
	}
	m.size++
}

// Remove deletes one occurrence of t; it reports whether an occurrence
// existed.
func (m *Multiset) Remove(t *element.Tuple) bool {
	k := t.Key()
	e := m.entries[k]
	if e == nil {
		return false
	}
	e.count--
	m.size--
	if e.count == 0 {
		delete(m.entries, k)
	}
	return true
}

// Apply folds a delta into the multiset.
func (m *Multiset) Apply(d Delta) {
	for _, t := range d.Deletes {
		m.Remove(t)
	}
	for _, t := range d.Inserts {
		m.Add(t)
	}
}

// Len returns the number of tuples counting duplicates.
func (m *Multiset) Len() int { return m.size }

// Tuples returns the contents (duplicates expanded) in deterministic
// key order.
func (m *Multiset) Tuples() []*element.Tuple {
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*element.Tuple, 0, m.size)
	for _, k := range keys {
		e := m.entries[k]
		for i := 0; i < e.count; i++ {
			out = append(out, e.tuple)
		}
	}
	return out
}

// Count returns the multiplicity of t.
func (m *Multiset) Count(t *element.Tuple) int {
	if e := m.entries[t.Key()]; e != nil {
		return e.count
	}
	return 0
}

// DiffToDelta computes the delta that transforms the multiset into the
// given target contents, and applies it. Stream-to-relation operators use
// this to convert successive window panes into incremental changes.
func (m *Multiset) DiffToDelta(target []*element.Tuple, at temporal.Instant) Delta {
	want := make(map[string]*msEntry, len(target))
	for _, t := range target {
		if e := want[t.Key()]; e != nil {
			e.count++
		} else {
			want[t.Key()] = &msEntry{tuple: t, count: 1}
		}
	}
	var d Delta
	d.At = at
	// Deletions: entries with higher count than target.
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		have := m.entries[k]
		wantCount := 0
		if e := want[k]; e != nil {
			wantCount = e.count
		}
		for i := wantCount; i < have.count; i++ {
			d.Deletes = append(d.Deletes, have.tuple)
		}
	}
	// Insertions: entries with lower count than target.
	wkeys := make([]string, 0, len(want))
	for k := range want {
		wkeys = append(wkeys, k)
	}
	sort.Strings(wkeys)
	for _, k := range wkeys {
		e := want[k]
		haveCount := 0
		if h := m.entries[k]; h != nil {
			haveCount = h.count
		}
		for i := haveCount; i < e.count; i++ {
			d.Inserts = append(d.Inserts, e.tuple)
		}
	}
	m.Apply(d)
	return d
}
