// Package subscribe implements live subscription fan-out over the
// engine's watermark batches: the serving half of the paper's "queryable
// state" (§3.2), pushed instead of polled. Clients register a Filter — a
// stream/entity/attribute selection, or a continuous SELECT re-evaluated
// against each watermark snapshot — and receive one Delivery per
// watermark whose batch touched their subscription.
//
// The Broker taps the engine with core.Engine.OnWatermark: at each
// watermark boundary the engine hands it the pinned state snapshot plus
// the batch's change events and emitted elements. The hook performs a
// non-blocking hand-off to the broker goroutine, which matches deltas
// against a filter index and fans out through per-client bounded send
// queues that never block:
//
//   - A slow consumer's queue overflows into a "lost" mark. Further
//     deltas for it are dropped (never buffered unboundedly, never
//     stalling ingest or other subscribers).
//   - When the consumer drains its queue, it receives exactly one Resync
//     delivery: a snapshot-pinned catch-up of its filtered state at an
//     explicit transaction-time cut, equal to reading
//     Store.SnapshotAt(cut) directly. Deliveries then resume from the
//     next watermark.
//
// Delivery guarantees are therefore at-least-once per watermark with
// explicit resync: a live subscriber sees every watermark that touched
// its filter; a lagging subscriber sees a prefix, one Resync at a cut at
// or after the gap, and every watermark after the cut.
package subscribe

import (
	"repro/internal/element"
	"repro/internal/query"
	"repro/internal/state"
	"repro/internal/temporal"
)

// Filter selects which deltas a subscription receives. The zero Filter
// subscribes to everything (all changes and all emitted elements).
//
// Setting Entity or Attr implies Changes; setting Stream implies Emitted.
// Query, when non-empty, is a continuous SELECT in the temporal query
// dialect (internal/query), re-evaluated against each watermark snapshot
// with now() anchored at the watermark; its result is pushed only when it
// differs from the previously delivered one.
type Filter struct {
	// Entity restricts change deliveries to one entity ("" = any).
	Entity string
	// Attr restricts change deliveries to one attribute ("" = any).
	Attr string
	// Stream restricts emitted-element deliveries to one stream ("" = any).
	Stream string
	// Changes subscribes to state change events (asserted/terminated).
	Changes bool
	// Emitted subscribes to EMIT-derived elements.
	Emitted bool
	// Query is an optional continuous SELECT re-run per watermark.
	Query string
}

// normalize applies the implication rules and the match-all default.
func (f Filter) normalize() Filter {
	if f.Entity != "" || f.Attr != "" {
		f.Changes = true
	}
	if f.Stream != "" {
		f.Emitted = true
	}
	if !f.Changes && !f.Emitted && f.Query == "" {
		f.Changes, f.Emitted = true, true
	}
	return f
}

// matchChange reports whether a change event passes the filter.
func (f Filter) matchChange(ch state.Change) bool {
	if !f.Changes {
		return false
	}
	if f.Entity != "" && ch.Fact.Entity != f.Entity {
		return false
	}
	if f.Attr != "" && ch.Fact.Attribute != f.Attr {
		return false
	}
	return true
}

// Kind classifies a Delivery.
type Kind int

// Delivery kinds.
const (
	// Deltas carries one watermark's filtered changes/emissions/result.
	Deltas Kind = iota
	// Resync marks a gap: the subscriber overflowed (or resumed from a
	// stale cursor) and receives a snapshot-pinned catch-up instead of
	// the missed deltas.
	Resync
	// Notice carries an operational event — the durable layer entering
	// or leaving degraded mode — rather than data. Note describes it.
	Notice
)

// String names the delivery kind.
func (k Kind) String() string {
	switch k {
	case Resync:
		return "resync"
	case Notice:
		return "notice"
	}
	return "deltas"
}

// Delivery is one pushed unit: the filtered view of one watermark batch
// (Kind Deltas), or a catch-up after a gap (Kind Resync). All slices are
// owned by the subscriber; the broker never reuses them.
type Delivery struct {
	// Kind distinguishes per-watermark deltas from a resync catch-up.
	Kind Kind
	// Watermark is the instant of the batch that produced the delivery.
	Watermark temporal.Instant
	// Changes are the batch's state transitions passing the filter
	// (Deltas only), in commit order.
	Changes []state.Change
	// Emitted are the batch's EMIT-derived elements passing the filter
	// (Deltas only), in emission order.
	Emitted []*element.Element
	// Result is the continuous query's result when it changed (or, on
	// Resync, the fresh result at the cut); nil otherwise.
	Result *query.Result
	// Cut is the transaction-time instant of the Resync catch-up: State
	// equals reading Store.SnapshotAt(Cut) with the subscription filter.
	Cut temporal.Instant
	// State is the Resync catch-up: the filtered believed state at Cut.
	State []*element.Fact
	// Note is the Notice payload: a human-readable description of the
	// operational event ("degraded: <cause>" or "durability resumed").
	Note string
}

// catchUp reads the filtered believed state through the pinned snapshot
// handle — the exact facts Store.SnapshotAt(snap.At()) would return for
// the same selection, which the resync contract promises.
func catchUp(snap *state.Snapshot, f Filter) []*element.Fact {
	var opts []state.ReadOpt
	if f.Attr != "" {
		opts = append(opts, state.WithAttribute(f.Attr))
	}
	facts := snap.List(opts...)
	if f.Entity == "" {
		return facts
	}
	kept := facts[:0]
	for _, fc := range facts {
		if fc.Entity == f.Entity {
			kept = append(kept, fc)
		}
	}
	return kept
}
