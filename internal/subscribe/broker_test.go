package subscribe

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/stream"
	"repro/internal/temporal"
)

var readingSchema = element.NewSchema(
	element.Field{Name: "sensor", Kind: element.KindString},
	element.Field{Name: "celsius", Kind: element.KindFloat},
)

func reading(ts int64, sensor string, celsius float64) *element.Element {
	return element.New("Reading", temporal.Instant(ts),
		element.NewTuple(readingSchema, element.String(sensor), element.Float(celsius)))
}

const testRules = `
RULE track ON Reading AS r
THEN REPLACE temperature(r.sensor) = r.celsius

RULE spike ON Reading AS r WHERE r.celsius > 95
THEN EMIT Alert(sensor = r.sensor, celsius = r.celsius)
`

func testEngine(t *testing.T, opts ...core.Option) *core.Engine {
	t.Helper()
	e := core.New(append([]core.Option{core.WithPolicy(core.StateFirst)}, opts...)...)
	if err := e.DeployRules(testRules); err != nil {
		t.Fatal(err)
	}
	return e
}

// waitBatches blocks until the broker has accounted for n watermark
// batches (dispatched or skipped), i.e. the asynchronous fan-out of an
// ingestion run has settled.
func waitBatches(t *testing.T, b *Broker, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		m := b.Metrics()
		if m.Batches+m.SkippedBatches >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("broker settled only %d of %d batches", b.Metrics().Batches, n)
}

func recvTimeout(t *testing.T, s *Subscriber) Delivery {
	t.Helper()
	type res struct {
		d  Delivery
		ok bool
	}
	ch := make(chan res, 1)
	go func() { d, ok := s.Recv(); ch <- res{d, ok} }()
	select {
	case r := <-ch:
		if !r.ok {
			t.Fatal("subscriber closed while a delivery was expected")
		}
		return r.d
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a delivery")
	}
	panic("unreachable")
}

// factLines renders facts in a canonical order for equality checks:
// everything but the atomic belief end, read through the safe accessor.
func factLines(facts []*element.Fact) []string {
	lines := make([]string, len(facts))
	for i, f := range facts {
		lines[i] = fmt.Sprintf("%s/%s=%s v=%v rec=%d end=%d",
			f.Entity, f.Attribute, f.Value.Key(), f.Validity, f.RecordedAt, f.BeliefEnd())
	}
	sort.Strings(lines)
	return lines
}

// directCatchUp reads the filtered state straight off the store at the
// advertised cut — the oracle the resync contract promises to equal.
func directCatchUp(st *state.Store, cut temporal.Instant, f Filter) []*element.Fact {
	return catchUp(st.SnapshotAt(cut), f)
}

func sameState(t *testing.T, got []*element.Fact, st *state.Store, cut temporal.Instant, f Filter) {
	t.Helper()
	want := factLines(directCatchUp(st, cut, f))
	have := factLines(got)
	if len(want) != len(have) {
		t.Fatalf("catch-up has %d facts, SnapshotAt(%d) has %d", len(have), cut, len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("catch-up fact %d = %s, want %s", i, have[i], want[i])
		}
	}
}

func TestSubscribeDeltaDelivery(t *testing.T) {
	e := testEngine(t)
	b := NewBroker(e)
	defer b.Close()

	all, err := b.Subscribe(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	ent, err := b.Subscribe(Filter{Entity: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	alerts, err := b.Subscribe(Filter{Stream: "Alert"})
	if err != nil {
		t.Fatal(err)
	}

	if err := e.Run([]stream.Message{
		stream.ElementMsg(reading(1, "s1", 20)),
		stream.ElementMsg(reading(2, "s2", 99)),
		stream.WatermarkMsg(10),
	}); err != nil {
		t.Fatal(err)
	}
	waitBatches(t, b, 1)

	d := recvTimeout(t, ent)
	if d.Kind != Deltas || d.Watermark != 10 {
		t.Fatalf("entity sub delivery: kind=%v wm=%d", d.Kind, d.Watermark)
	}
	if len(d.Changes) != 1 || d.Changes[0].Fact.Entity != "s1" || len(d.Emitted) != 0 {
		t.Fatalf("entity sub saw %d changes / %d emitted", len(d.Changes), len(d.Emitted))
	}

	d = recvTimeout(t, alerts)
	if len(d.Emitted) != 1 || d.Emitted[0].Stream != "Alert" || len(d.Changes) != 0 {
		t.Fatalf("stream sub saw %d emitted / %d changes", len(d.Emitted), len(d.Changes))
	}

	d = recvTimeout(t, all)
	if len(d.Changes) != 2 || len(d.Emitted) != 1 {
		t.Fatalf("match-all sub saw %d changes / %d emitted, want 2 / 1", len(d.Changes), len(d.Emitted))
	}
	for _, ch := range d.Changes {
		if ch.Kind != state.Asserted || ch.Fact.Attribute != "temperature" {
			t.Fatalf("unexpected change %v %s", ch.Kind, ch.Fact)
		}
	}

	// A watermark whose batch touched nothing in the filter delivers
	// nothing: the attribute filter rejects Alert-only traffic.
	attr, err := b.Subscribe(Filter{Attr: "pressure"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run([]stream.Message{
		stream.ElementMsg(reading(11, "s3", 99)),
		stream.WatermarkMsg(20),
	}); err != nil {
		t.Fatal(err)
	}
	waitBatches(t, b, 2)
	if d, ok := attr.TryRecv(); ok {
		t.Fatalf("attribute sub got unexpected delivery %v", d)
	}
}

func TestSubscribeSlowConsumerResync(t *testing.T) {
	e := testEngine(t)
	b := NewBroker(e)
	defer b.Close()

	slow, err := b.Subscribe(Filter{Entity: "s1"}, WithQueueLen(2))
	if err != nil {
		t.Fatal(err)
	}

	var msgs []stream.Message
	for i := 0; i < 6; i++ {
		msgs = append(msgs, stream.ElementMsg(reading(int64(i*10+1), "s1", float64(i))))
		msgs = append(msgs, stream.WatermarkMsg(temporal.Instant((i+1)*10)))
	}
	if err := e.Run(msgs); err != nil {
		t.Fatal(err)
	}
	waitBatches(t, b, 6)
	if !slow.Lost() {
		t.Fatal("slow subscriber should have overflowed its queue")
	}

	// The queued prefix drains first, in watermark order.
	for i, want := range []temporal.Instant{10, 20} {
		d := recvTimeout(t, slow)
		if d.Kind != Deltas || d.Watermark != want {
			t.Fatalf("drain %d: kind=%v wm=%d, want deltas at %d", i, d.Kind, d.Watermark, want)
		}
	}
	// Then exactly one resync at the latest cut, equal to a direct
	// SnapshotAt read.
	d := recvTimeout(t, slow)
	if d.Kind != Resync {
		t.Fatalf("after drain got %v, want resync", d.Kind)
	}
	if d.Cut != 60 || d.Watermark != 60 {
		t.Fatalf("resync cut=%d wm=%d, want 60", d.Cut, d.Watermark)
	}
	sameState(t, d.State, e.Store(), d.Cut, slow.Filter())
	if len(d.State) != 1 || d.State[0].Value.Key() != element.Float(5).Key() {
		t.Fatalf("resync state %v, want temperature(s1)=5", d.State)
	}
	if d2, ok := slow.TryRecv(); ok {
		t.Fatalf("second resync/delivery %v after catch-up", d2)
	}
	if got := b.Metrics().Resyncs; got != 1 {
		t.Fatalf("resyncs = %d, want exactly 1", got)
	}

	// Deliveries resume from the next watermark after the cut.
	if err := e.Run([]stream.Message{
		stream.ElementMsg(reading(61, "s1", 42)),
		stream.WatermarkMsg(70),
	}); err != nil {
		t.Fatal(err)
	}
	d = recvTimeout(t, slow)
	if d.Kind != Deltas || d.Watermark != 70 {
		t.Fatalf("post-resync delivery kind=%v wm=%d, want deltas at 70", d.Kind, d.Watermark)
	}
}

func TestSubscribeQueryPush(t *testing.T) {
	e := testEngine(t)
	b := NewBroker(e)
	defer b.Close()

	if _, err := b.Subscribe(Filter{Query: "SELECT nonsense FROM"}); err == nil {
		t.Fatal("malformed continuous query accepted")
	}
	q, err := b.Subscribe(Filter{Query: "SELECT entity, value FROM temperature ORDER BY entity"})
	if err != nil {
		t.Fatal(err)
	}

	if err := e.Run([]stream.Message{
		stream.ElementMsg(reading(1, "s1", 20)),
		stream.WatermarkMsg(10),
	}); err != nil {
		t.Fatal(err)
	}
	d := recvTimeout(t, q)
	if d.Result == nil || len(d.Result.Rows) != 1 {
		t.Fatalf("first push result %v, want one row", d.Result)
	}
	if got := d.Result.Rows[0][1].MustFloat(); got != 20 {
		t.Fatalf("pushed value %v, want 20", got)
	}

	// A watermark that does not change the result pushes nothing.
	if err := e.Process(stream.WatermarkMsg(20)); err != nil {
		t.Fatal(err)
	}
	waitBatches(t, b, 2)
	if d, ok := q.TryRecv(); ok {
		t.Fatalf("unchanged query result pushed: %v", d)
	}

	// A state change re-triggers the push.
	if err := e.Run([]stream.Message{
		stream.ElementMsg(reading(21, "s1", 25)),
		stream.WatermarkMsg(30),
	}); err != nil {
		t.Fatal(err)
	}
	d = recvTimeout(t, q)
	if d.Result == nil || d.Result.Rows[0][1].MustFloat() != 25 {
		t.Fatalf("second push result %v, want value 25", d.Result)
	}
}

func TestSubscribeResumeFromCursor(t *testing.T) {
	e := testEngine(t)
	b := NewBroker(e)
	defer b.Close()

	if err := e.Run([]stream.Message{
		stream.ElementMsg(reading(1, "s1", 20)),
		stream.WatermarkMsg(10),
	}); err != nil {
		t.Fatal(err)
	}
	waitBatches(t, b, 1)

	// A cursor behind the current cut starts lost: the first receive is
	// a catch-up, not a silent gap.
	behind, err := b.Subscribe(Filter{Entity: "s1"}, ResumeFrom(5))
	if err != nil {
		t.Fatal(err)
	}
	d := recvTimeout(t, behind)
	if d.Kind != Resync || d.Cut != 10 {
		t.Fatalf("stale-cursor first delivery kind=%v cut=%d, want resync at 10", d.Kind, d.Cut)
	}
	sameState(t, d.State, e.Store(), d.Cut, behind.Filter())

	// A current cursor resumes silently.
	current, err := b.Subscribe(Filter{Entity: "s1"}, ResumeFrom(10))
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := current.TryRecv(); ok {
		t.Fatalf("current-cursor subscriber got %v before any new watermark", d)
	}
}

func TestSubscribeClose(t *testing.T) {
	e := testEngine(t)
	b := NewBroker(e)
	defer b.Close()

	s, err := b.Subscribe(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run([]stream.Message{
		stream.ElementMsg(reading(1, "s1", 20)),
		stream.WatermarkMsg(10),
	}); err != nil {
		t.Fatal(err)
	}
	waitBatches(t, b, 1)
	s.Close()
	s.Close() // idempotent

	// Queued deliveries stay readable after Close; then ok=false.
	if d, ok := s.Recv(); !ok || d.Kind != Deltas {
		t.Fatalf("post-close drain got ok=%v kind=%v", ok, d.Kind)
	}
	if _, ok := s.Recv(); ok {
		t.Fatal("Recv after drain of a closed subscriber returned ok=true")
	}
	if got := b.Metrics().Subscribers; got != 0 {
		t.Fatalf("subscribers = %d after close, want 0", got)
	}
}

// TestSubscribeStress is the slow-consumer soak: many live subscribers
// plus one permanently stalled one must not perturb ingestion, and the
// stalled subscriber must see exactly one resync whose catch-up equals a
// direct SnapshotAt read at the advertised cut.
func TestSubscribeStress(t *testing.T) {
	const (
		elements = 20_000
		wmEvery  = 512
		sensors  = 100
		live     = 16
	)
	mkMsgs := func() []stream.Message {
		els := make([]*element.Element, elements)
		for i := range els {
			els[i] = reading(int64(i+1), fmt.Sprintf("s%d", i%sensors), float64(20+i%80))
		}
		return stream.WithPeriodicWatermarks(els, wmEvery)
	}

	// Baseline: same workload, no broker.
	base := testEngine(t)
	t0 := time.Now()
	if err := base.Run(mkMsgs()); err != nil {
		t.Fatal(err)
	}
	baseline := time.Since(t0)

	e := testEngine(t)
	b := NewBroker(e)
	defer b.Close()

	stalled, err := b.Subscribe(Filter{}, WithQueueLen(4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var delivered [live]uint64
	subs := make([]*Subscriber, live)
	for i := 0; i < live; i++ {
		f := Filter{Entity: fmt.Sprintf("s%d", i%sensors)}
		if i%3 == 0 {
			f = Filter{Stream: "Alert"}
		}
		s, err := b.Subscribe(f)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
		wg.Add(1)
		go func(i int, s *Subscriber) {
			defer wg.Done()
			for {
				if _, ok := s.Recv(); !ok {
					return
				}
				delivered[i]++
			}
		}(i, s)
	}

	t1 := time.Now()
	if err := e.Run(mkMsgs()); err != nil {
		t.Fatal(err)
	}
	ingest := time.Since(t1)
	// The stalled subscriber must never block a watermark. Wall-clock
	// comparison with a very generous bound: same process, same detector
	// overhead, so a blocked fan-out would blow far past this.
	if baseline > 10*time.Millisecond && ingest > 10*baseline {
		t.Fatalf("ingest with stalled subscriber took %v vs %v baseline", ingest, baseline)
	}

	const batches = elements / wmEvery
	waitBatches(t, b, batches)
	for i := range subs {
		subs[i].Close()
	}
	wg.Wait()
	for i, n := range delivered {
		if n == 0 {
			t.Fatalf("live subscriber %d received nothing", i)
		}
	}

	// Drain the stalled subscriber: a deltas prefix, exactly one resync,
	// nothing after.
	resyncs, prefix := 0, 0
	var cut temporal.Instant
	var caught []*element.Fact
	for {
		d, ok := stalled.TryRecv()
		if !ok {
			break
		}
		switch d.Kind {
		case Deltas:
			if resyncs > 0 {
				t.Fatal("deltas delivered after the resync with no new watermark")
			}
			prefix++
		case Resync:
			resyncs++
			cut, caught = d.Cut, d.State
		}
	}
	if resyncs != 1 {
		t.Fatalf("stalled subscriber saw %d resyncs, want exactly 1 (prefix %d)", resyncs, prefix)
	}
	sameState(t, caught, e.Store(), cut, stalled.Filter())
}
