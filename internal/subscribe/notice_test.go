package subscribe

// Durability-transition Notice fan-out: named to ride in the CI chaos
// job alongside the segment chaos suite.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/state/segment"
	"repro/internal/vfs"
)

// TestDegradeNoticeDelivery: a durable engine degrading and resuming
// pushes one Notice delivery per transition to every subscriber, with
// the cause (then the recovery) in the Note.
func TestDegradeNoticeDelivery(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.OS)
	ffs.AddRule(vfs.Rule{Op: vfs.OpCreate, Path: "seg-*.seg", Count: 1,
		Err: vfs.Permanent(errors.New("medium error"))})
	e := testEngine(t, core.WithDurableDir(t.TempDir(),
		segment.WithFS(ffs), segment.WithFlushEvery(1),
		segment.WithRetryPolicy(segment.RetryPolicy{MaxRetries: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})))
	defer e.Close()
	b := NewBroker(e)
	defer b.Close()
	sub, err := b.Subscribe(Filter{Changes: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	d := e.Durable()
	if err := d.Mem().DB().Put("ann", "position", element.String("hall")); err != nil {
		t.Fatalf("put: %v", err)
	}
	d.Pulse(d.Mem().Snapshot().At())
	deadline := time.Now().Add(5 * time.Second)
	for d.Degraded() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for the store to degrade")
		}
		time.Sleep(time.Millisecond)
	}

	got := recvTimeout(t, sub)
	if got.Kind != Notice || !strings.Contains(got.Note, "degraded") {
		t.Fatalf("want a degraded Notice, got kind=%v note=%q", got.Kind, got.Note)
	}
	if got.Kind.String() != "notice" {
		t.Fatalf("Notice kind must stringify for the wire, got %q", got.Kind.String())
	}

	if err := d.Resume(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got = recvTimeout(t, sub)
	if got.Kind != Notice || !strings.Contains(got.Note, "resumed") {
		t.Fatalf("want a resumed Notice, got kind=%v note=%q", got.Kind, got.Note)
	}
}
