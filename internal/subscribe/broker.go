package subscribe

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/state"
	"repro/internal/state/segment"
	"repro/internal/temporal"
)

// brokerBacklog bounds the watermark batches queued between the engine's
// hook and the broker goroutine. When the broker falls this far behind,
// the hook drops the batch (never blocking the watermark) and every
// subscriber is resynchronized at the next dispatched cut.
const brokerBacklog = 64

// DefaultQueueLen is the per-subscriber send-queue bound unless
// WithQueueLen overrides it.
const DefaultQueueLen = 256

// Broker fans watermark batches out to subscribers. Create one per
// engine with NewBroker; it registers the engine watermark hook and runs
// one dispatch goroutine. All methods are safe for concurrent use.
type Broker struct {
	batch    chan core.WatermarkBatch
	notices  chan string
	overflow atomic.Bool
	done     chan struct{}
	stop     sync.Once

	mu     sync.Mutex
	subs   map[uint64]*Subscriber
	nextID uint64
	// lastWM/lastSnap are the latest dispatched cut: the instant and
	// pinned snapshot resyncs and stale-cursor catch-ups are built from.
	lastWM   temporal.Instant
	lastSnap *state.Snapshot

	// Filter index, rebuilt under mu on membership change: change
	// subscribers keyed by exact entity (attribute checked per event)
	// or entity-wildcarded; emitted subscribers keyed by stream.
	byEntity  map[string][]*Subscriber
	anyEntity []*Subscriber
	byStream  map[string][]*Subscriber
	anyStream []*Subscriber
	querySubs []*Subscriber

	// touched is the dispatch scratch list of subscribers with a pending
	// delivery this batch (broker goroutine only, guarded by mu anyway).
	touched []*Subscriber

	// latency is recorded and read under mu (Histogram itself is not
	// concurrency-safe).
	latency     metrics.Histogram
	drops       metrics.Counter
	resyncs     metrics.Counter
	batches     metrics.Counter
	skipped     metrics.Counter
	subscribers metrics.Gauge
}

// NewBroker builds a broker over the engine and registers its watermark
// hook. Register before ingestion starts (OnWatermark's contract). The
// hook is non-blocking: a stalled broker costs the engine one failed
// channel send per watermark, never a stall.
func NewBroker(e *core.Engine) *Broker {
	b := &Broker{
		batch:    make(chan core.WatermarkBatch, brokerBacklog),
		notices:  make(chan string, 4),
		done:     make(chan struct{}),
		subs:     make(map[uint64]*Subscriber),
		byEntity: make(map[string][]*Subscriber),
		byStream: make(map[string][]*Subscriber),
		lastWM:   e.Watermark(),
		lastSnap: e.Store().SnapshotAt(e.Watermark()),
	}
	e.OnWatermark(func(wb core.WatermarkBatch) {
		select {
		case b.batch <- wb:
		default:
			b.skipped.Inc()
			b.overflow.Store(true)
		}
	})
	if d := e.Durable(); d != nil {
		// Durability transitions become Notice deliveries. The hook may
		// run under an engine shard lock, so it only formats the note and
		// hands off non-blocking; the broker goroutine fans it out.
		d.OnDegraded(func(deg *segment.Degraded) {
			note := "durability resumed"
			if deg != nil {
				note = fmt.Sprintf("durability degraded: %v", deg.Cause)
			}
			select {
			case b.notices <- note:
			default:
			}
		})
	}
	go b.loop()
	return b
}

// SubOption configures one subscription.
type SubOption func(*subConfig)

type subConfig struct {
	queueLen  int
	cursor    temporal.Instant
	hasCursor bool
}

// WithQueueLen bounds the subscriber's send queue (default
// DefaultQueueLen, minimum 1). Smaller queues trade delivery slack for
// memory; overflowing one costs the subscriber a resync, nothing else.
func WithQueueLen(n int) SubOption {
	return func(c *subConfig) { c.queueLen = n }
}

// ResumeFrom resumes a reconnecting subscriber from a cursor — the last
// watermark it saw. A cursor behind the broker's current cut starts the
// subscription in the lost state, so its first receive is a Resync
// catch-up at the current cut instead of a silent gap.
func ResumeFrom(cursor temporal.Instant) SubOption {
	return func(c *subConfig) { c.cursor, c.hasCursor = cursor, true }
}

// Subscribe registers a subscription and returns its Subscriber. A
// non-empty Filter.Query is validated by running it once against the
// broker's current cut; a query error fails the subscription.
func (b *Broker) Subscribe(f Filter, opts ...SubOption) (*Subscriber, error) {
	cfg := subConfig{queueLen: DefaultQueueLen}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.queueLen < 1 {
		cfg.queueLen = 1
	}
	f = f.normalize()

	b.mu.Lock()
	defer b.mu.Unlock()
	s := &Subscriber{
		b:      b,
		filter: f,
		queue:  make(chan Delivery, cfg.queueLen),
		kick:   make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
	if f.Query != "" {
		// Parse and plan once at subscription time; every watermark
		// re-evaluation reuses the prepared handle.
		p, err := query.Prepare(f.Query)
		if err != nil {
			return nil, fmt.Errorf("subscribe: query: %w", err)
		}
		_, fp, err := runPrepared(p, b.lastSnap, b.lastWM)
		if err != nil {
			return nil, fmt.Errorf("subscribe: query: %w", err)
		}
		s.prepared = p
		s.lastFP = fp
	}
	if cfg.hasCursor && cfg.cursor < b.lastWM {
		// The cursor predates the current cut: deltas in between are
		// gone, so the first receive is a catch-up at the current cut.
		s.lost.Store(true)
	}
	b.nextID++
	s.id = b.nextID
	b.subs[s.id] = s
	b.indexAdd(s)
	b.subscribers.Set(int64(len(b.subs)))
	return s, nil
}

// indexAdd links s into the filter index. Callers hold mu.
func (b *Broker) indexAdd(s *Subscriber) {
	if s.filter.Changes {
		if e := s.filter.Entity; e != "" {
			b.byEntity[e] = append(b.byEntity[e], s)
		} else {
			b.anyEntity = append(b.anyEntity, s)
		}
	}
	if s.filter.Emitted {
		if st := s.filter.Stream; st != "" {
			b.byStream[st] = append(b.byStream[st], s)
		} else {
			b.anyStream = append(b.anyStream, s)
		}
	}
	if s.filter.Query != "" {
		b.querySubs = append(b.querySubs, s)
	}
}

// rebuildIndex reconstructs the filter index from the live subscriber
// set — the removal path; additions append incrementally. Callers hold mu.
func (b *Broker) rebuildIndex() {
	b.byEntity = make(map[string][]*Subscriber)
	b.byStream = make(map[string][]*Subscriber)
	b.anyEntity, b.anyStream, b.querySubs = nil, nil, nil
	for _, s := range b.subs {
		b.indexAdd(s)
	}
}

// remove unregisters s and wakes any blocked receive.
func (b *Broker) remove(s *Subscriber) {
	b.mu.Lock()
	if _, ok := b.subs[s.id]; ok {
		delete(b.subs, s.id)
		b.rebuildIndex()
		b.subscribers.Set(int64(len(b.subs)))
	}
	b.mu.Unlock()
}

// Close stops the dispatch goroutine and closes every subscriber.
// The engine keeps running; its hook sends simply stop being drained.
func (b *Broker) Close() {
	b.stop.Do(func() { close(b.done) })
	b.mu.Lock()
	subs := make([]*Subscriber, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		s.Close()
	}
}

// loop drains the batch and notice channels onto dispatch until Close.
func (b *Broker) loop() {
	for {
		select {
		case wb := <-b.batch:
			b.dispatch(wb)
		case note := <-b.notices:
			b.notifyAll(note)
		case <-b.done:
			return
		}
	}
}

// notifyAll offers a Notice delivery to every subscriber, never
// blocking: a full queue drops the notice — the subscriber is already
// behind, and the same health is on /readyz and Store.Info().
func (b *Broker) notifyAll(note string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := Delivery{Kind: Notice, Watermark: b.lastWM, Note: note}
	for _, s := range b.subs {
		select {
		case s.queue <- d:
		default:
		}
	}
}

// dispatch matches one watermark batch against the filter index and
// offers each touched subscriber its delivery, never blocking: a full
// queue marks the subscriber lost (resynced on drain) instead.
func (b *Broker) dispatch(wb core.WatermarkBatch) {
	start := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastWM, b.lastSnap = wb.Watermark, wb.Snapshot
	if b.overflow.Swap(false) {
		// The broker's own backlog overflowed: batches (and their
		// changes) were dropped wholesale, so every subscriber must be
		// caught up at the latest cut rather than shown a gap.
		for _, s := range b.subs {
			b.markLost(s)
		}
		b.batches.Inc()
		b.latency.Record(time.Since(start))
		return
	}

	b.touched = b.touched[:0]
	for _, ch := range wb.Changes {
		for _, s := range b.byEntity[ch.Fact.Entity] {
			b.offerChange(s, ch)
		}
		for _, s := range b.anyEntity {
			b.offerChange(s, ch)
		}
	}
	for _, el := range wb.Emitted {
		for _, s := range b.byStream[el.Stream] {
			b.touch(s)
			s.pend.Emitted = append(s.pend.Emitted, el)
		}
		for _, s := range b.anyStream {
			if s.filter.Stream == "" || s.filter.Stream == el.Stream {
				b.touch(s)
				s.pend.Emitted = append(s.pend.Emitted, el)
			}
		}
	}
	for _, s := range b.querySubs {
		res, fp, err := runPrepared(s.prepared, wb.Snapshot, wb.Watermark)
		if err == nil && fp != s.lastFP {
			s.lastFP = fp
			b.touch(s)
			s.pend.Result = res
		}
	}

	for _, s := range b.touched {
		d := s.pend
		s.pend = Delivery{}
		s.inTouched = false
		if s.lost.Load() {
			// A pending resync at a later cut subsumes these deltas.
			continue
		}
		d.Kind = Deltas
		d.Watermark = wb.Watermark
		select {
		case s.queue <- d:
		default:
			b.markLost(s)
			b.drops.Inc()
		}
	}
	b.batches.Inc()
	b.latency.Record(time.Since(start))
}

// offerChange appends a change to s's pending delivery when it passes
// the attribute check (the entity check is the index bucket).
func (b *Broker) offerChange(s *Subscriber, ch state.Change) {
	if s.filter.Attr != "" && s.filter.Attr != ch.Fact.Attribute {
		return
	}
	b.touch(s)
	s.pend.Changes = append(s.pend.Changes, ch)
}

// touch adds s to this batch's touched list once.
func (b *Broker) touch(s *Subscriber) {
	if !s.inTouched {
		s.inTouched = true
		b.touched = append(b.touched, s)
	}
}

// markLost transitions s into the lost state and wakes a blocked
// receive, which will synthesize the resync once the queue drains.
func (b *Broker) markLost(s *Subscriber) {
	s.lost.Store(true)
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// resync builds one catch-up delivery for a lost subscriber at the
// broker's latest cut and clears the lost state. Serialized with
// dispatch under mu, so deltas enqueued after the resync are exactly the
// watermarks after the cut — at-least-once with no hole.
func (b *Broker) resync(s *Subscriber) (Delivery, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !s.lost.Load() {
		return Delivery{}, false
	}
	d := Delivery{Kind: Resync, Watermark: b.lastWM, Cut: b.lastSnap.At()}
	if s.filter.Changes {
		d.State = catchUp(b.lastSnap, s.filter)
	}
	if s.prepared != nil {
		if res, fp, err := runPrepared(s.prepared, b.lastSnap, b.lastWM); err == nil {
			d.Result = res
			s.lastFP = fp
		}
	}
	s.lost.Store(false)
	b.resyncs.Inc()
	return d, true
}

// runPrepared evaluates a prepared continuous query against a pinned
// snapshot with now() anchored at the watermark, returning the result
// and its change fingerprint. The handle is planned once at Subscribe;
// per-watermark re-evaluation pays no parse and no plan.
func runPrepared(p *query.Prepared, snap *state.Snapshot, now temporal.Instant) (*query.Result, string, error) {
	res, err := p.Exec(query.ExecEnv{Store: snap, Now: now})
	if err != nil {
		return nil, "", err
	}
	var sb strings.Builder
	for _, c := range res.Columns {
		sb.WriteString(c)
		sb.WriteByte('\x00')
	}
	for _, row := range res.Rows {
		for _, v := range row {
			sb.WriteString(v.Key())
			sb.WriteByte('\x1f')
		}
		sb.WriteByte('\x1e')
	}
	return res, sb.String(), nil
}

// Metrics is a point-in-time reading of broker health.
type Metrics struct {
	// Subscribers is the live subscription count.
	Subscribers int
	// QueueDepth is the total deliveries currently queued across all
	// subscriber send queues.
	QueueDepth int
	// Drops counts deliveries dropped on full subscriber queues.
	Drops uint64
	// Resyncs counts catch-up deliveries served.
	Resyncs uint64
	// Batches counts watermark batches dispatched.
	Batches uint64
	// SkippedBatches counts batches the hook dropped because the broker
	// backlog was full (each skip resyncs all subscribers).
	SkippedBatches uint64
	// FanoutMean and FanoutP99 summarize per-batch dispatch latency.
	FanoutMean time.Duration
	FanoutP99  time.Duration
}

// Metrics returns current broker counters and fan-out latency.
func (b *Broker) Metrics() Metrics {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := Metrics{
		Subscribers:    len(b.subs),
		Drops:          b.drops.Value(),
		Resyncs:        b.resyncs.Value(),
		Batches:        b.batches.Value(),
		SkippedBatches: b.skipped.Value(),
		FanoutMean:     b.latency.Mean(),
		FanoutP99:      b.latency.Quantile(0.99),
	}
	for _, s := range b.subs {
		m.QueueDepth += len(s.queue)
	}
	return m
}
