package subscribe

import (
	"sync"
	"sync/atomic"

	"repro/internal/query"
)

// Subscriber is one registered subscription: a bounded delivery queue
// plus the drop-and-resync state machine. Receive deliveries with Recv
// (or TryRecv) and release the subscription with Close.
//
// A Subscriber never applies backpressure to the engine or the broker:
// when its queue is full the broker marks it lost and stops enqueuing;
// the first Recv after the queue drains returns one Resync catch-up and
// deliveries resume.
type Subscriber struct {
	b      *Broker
	id     uint64
	filter Filter
	queue  chan Delivery
	// lost marks an overflowed (or stale-cursor) subscription: set by
	// the broker, cleared by the resync that repairs it.
	lost atomic.Bool
	// kick wakes a blocked Recv when lost is set without an enqueue
	// (broker-backlog overflow marks subscribers lost out of band).
	kick      chan struct{}
	closed    chan struct{}
	closeOnce sync.Once

	// Dispatch scratch, guarded by the broker mutex: the delivery being
	// assembled for the current batch and the query-result fingerprint.
	pend      Delivery
	inTouched bool
	lastFP    string
	// prepared is the continuous query's parsed-and-planned handle,
	// built once at Subscribe; nil when the filter carries no query.
	prepared *query.Prepared
}

// Filter returns the normalized subscription filter.
func (s *Subscriber) Filter() Filter { return s.filter }

// Recv blocks until the next delivery and returns it. After the queued
// prefix of a lagging subscription drains, Recv synthesizes the pending
// Resync catch-up. It returns ok=false once the subscription is closed
// and its queue fully drained.
func (s *Subscriber) Recv() (Delivery, bool) {
	for {
		// Drain the queued prefix first: deliveries already accepted
		// precede any resync in watermark order.
		select {
		case d := <-s.queue:
			return d, true
		default:
		}
		if s.lost.Load() {
			if d, ok := s.b.resync(s); ok {
				return d, true
			}
		}
		select {
		case d := <-s.queue:
			return d, true
		case <-s.kick:
			// Lost was set without an enqueue; loop to resync.
		case <-s.closed:
			select {
			case d := <-s.queue:
				return d, true
			default:
				return Delivery{}, false
			}
		}
	}
}

// TryRecv returns the next delivery without blocking. Like Recv it
// synthesizes the pending Resync once the queue has drained; ok=false
// means nothing is currently deliverable.
func (s *Subscriber) TryRecv() (Delivery, bool) {
	select {
	case d := <-s.queue:
		return d, true
	default:
	}
	if s.lost.Load() {
		return s.b.resync(s)
	}
	return Delivery{}, false
}

// Pending reports how many deliveries are queued (monitoring only; the
// value is stale by the time it returns).
func (s *Subscriber) Pending() int { return len(s.queue) }

// Lost reports whether the subscription currently awaits a resync.
func (s *Subscriber) Lost() bool { return s.lost.Load() }

// Close unregisters the subscription. Queued deliveries remain readable;
// Recv returns ok=false after they drain.
func (s *Subscriber) Close() {
	s.b.remove(s)
	s.closeOnce.Do(func() { close(s.closed) })
}

// Done exposes the closed signal for select-based consumers.
func (s *Subscriber) Done() <-chan struct{} { return s.closed }
