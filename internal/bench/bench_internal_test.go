package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunAtSmallScale smoke-runs every experiment at a tiny
// scale and validates the direction of each headline claim.
func TestAllExperimentsRunAtSmallScale(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(0.05)
			if tab == nil || len(tab.Rows()) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if tab.String() == "" {
				t.Fatal("empty rendering")
			}
		})
	}
}

func findRow(t *testing.T, rows [][]string, prefix string) []string {
	t.Helper()
	for _, r := range rows {
		if strings.HasPrefix(r[0], prefix) {
			return r
		}
	}
	t.Fatalf("no row with prefix %q in %v", prefix, rows)
	return nil
}

func TestE1StateScopesExactly(t *testing.T) {
	tab := E1SessionScoping(0.2)
	rows := tab.Rows()
	stateRow := findRow(t, rows, "explicit-state")
	if stateRow[2] != "100" { // exact-recall%
		t.Errorf("explicit state should scope every session exactly: %v", stateRow)
	}
	fixed := findRow(t, rows, "tumbling-5m")
	if fixed[2] == "100" {
		t.Errorf("fixed windows should not be exact: %v", fixed)
	}
}

func TestE2StateHasNoContradictions(t *testing.T) {
	tab := E2Contradictions(0.3)
	rows := tab.Rows()
	stateRow := findRow(t, rows, "explicit-state")
	if stateRow[2] != "0" || stateRow[3] != "0" {
		t.Errorf("explicit state must be contradiction-free and correct: %v", stateRow)
	}
	windowRow := findRow(t, rows, "tumbling-5m")
	if windowRow[2] == "0" {
		t.Errorf("5m windows should produce contradictions on this workload: %v", windowRow)
	}
}

func TestE3StateAttributionIsExact(t *testing.T) {
	tab := E3Reclassification(0.2)
	rows := tab.Rows()
	for _, r := range rows {
		if r[0] == "explicit-state" && (r[3] != "0" || r[4] != "0") {
			t.Errorf("state attribution should be exact: %v", r)
		}
	}
	sawWindowError := false
	for _, r := range rows {
		if r[0] == "window-1m" && (r[3] != "0" || r[4] != "0") {
			sawWindowError = true
		}
	}
	if !sawWindowError {
		t.Error("window attribution should err at some reclassification rate")
	}
}

func TestE5GatingReducesProcessed(t *testing.T) {
	tab := E5StateGating(0.3)
	rows := tab.Rows()
	// At 10% monitored, gated processed must be well below ungated.
	var ungated, gated []string
	for _, r := range rows {
		if r[0] == "10" && r[1] == "ungated" {
			ungated = r
		}
		if r[0] == "10" && r[1] == "gated" {
			gated = r
		}
	}
	if ungated == nil || gated == nil {
		t.Fatalf("missing rows: %v", rows)
	}
	if gated[3] >= ungated[3] && gated[3] != "0" {
		// string compare is unreliable for numbers of different magnitude;
		// just require fewer digits or smaller leading value.
		if len(gated[3]) >= len(ungated[3]) && gated[3] >= ungated[3] {
			t.Errorf("gated should process fewer elements: gated=%s ungated=%s", gated[3], ungated[3])
		}
	}
}

func TestE8PoliciesDiverge(t *testing.T) {
	tab := E8Semantics(0.3)
	rows := tab.Rows()
	sf := findRow(t, rows, "state-first")
	stf := findRow(t, rows, "stream-first")
	if sf[3] != "100" {
		t.Errorf("state-first should pass every RoomEntry (position set same tick): %v", sf)
	}
	if stf[3] == "100" {
		t.Errorf("stream-first should lag and drop first entries: %v", stf)
	}
}
