package bench

import (
	"sync"
	"time"

	"repro/internal/subscribe"
)

// Fan-out overhead: the e7 ingest workload with a large subscriber
// population attached through the subscription broker — 1k filtered
// subscribers draining concurrently plus one permanently stalled
// match-all client. The broker taps the engine's watermark hook, so the
// cost the gate bounds is the per-batch change capture (watched-store
// clones) and the non-blocking hand-off; the stalled client exercises
// the drop-and-resync path, which must never block a watermark.

// fanoutStalledQueue is the stalled subscriber's deliberately tiny queue.
const fanoutStalledQueue = 4

// fanoutRun drives n elements through the serial ingest engine with subs
// draining subscribers plus one stalled one, returning the wall-clock
// ingest time, the broker's mean per-batch fan-out latency, and the
// number of batches dispatched.
func fanoutRun(subs, n int) (time.Duration, time.Duration, int) {
	msgs := ingestMessages(n)
	e := ingestEngine(1)
	b := subscribe.NewBroker(e)
	names := keyNamesPrefixed("s", ingestEntities)
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		s, err := b.Subscribe(subscribe.Filter{Entity: names[i%ingestEntities], Attr: "temperature"})
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(s *subscribe.Subscriber) {
			defer wg.Done()
			for {
				if _, ok := s.Recv(); !ok {
					return
				}
			}
		}(s)
	}
	// The stalled client subscribes to everything and never reads.
	if _, err := b.Subscribe(subscribe.Filter{}, subscribe.WithQueueLen(fanoutStalledQueue)); err != nil {
		panic(err)
	}

	start := time.Now()
	if err := e.Run(msgs); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)

	// Settle the asynchronous dispatch before reading latency numbers.
	expect := uint64(n / ingestWMEvery)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		m := b.Metrics()
		if m.Batches+m.SkippedBatches >= expect {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m := b.Metrics()
	b.Close()
	wg.Wait()
	return elapsed, m.FanoutMean, int(m.Batches)
}
