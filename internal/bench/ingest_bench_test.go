package bench

import (
	"testing"
)

// benchmarkIngest drives one fixed-size message batch through a fresh
// engine per iteration, so ns/op and allocs/op are per 50k-element
// pipeline run; the elems/s metric is the headline number.
func benchmarkIngest(b *testing.B, workers int) {
	const n = 50_000
	msgs := ingestMessages(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := ingestEngine(workers)
		if err := e.Run(msgs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
}

func BenchmarkIngestSerial(b *testing.B)    { benchmarkIngest(b, 1) }
func BenchmarkIngestParallel4(b *testing.B) { benchmarkIngest(b, 4) }
func BenchmarkIngestParallel8(b *testing.B) { benchmarkIngest(b, 8) }

// BenchmarkPutBatch contrasts the group-committed write path with the
// per-put path of BenchmarkShardedPutParallel / e7/put-seq.
func BenchmarkPutBatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		putBatchThroughput(1_000, 50_000)
	}
}
