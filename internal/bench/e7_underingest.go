package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/element"
	"repro/internal/query"
	"repro/internal/state"
	"repro/internal/temporal"
)

// Reader latency under concurrent ingest: the snapshot-epoch refactor's
// target metric. Background writers group-commit replace batches
// (state.PutBatch, the engine's hot write path) while the measured
// goroutine runs wildcard scans or on-demand queries. The lock-free read
// path pins a transaction-time cut and gathers from published heads; the
// retained ListLockAll baseline holds every shard's read lock for the
// whole gather, so writers and the scan serialize — the regression gate
// (cmd/benchrunner) requires the snapshot path to beat it by >= 2x when
// the machine can actually run readers and writers in parallel.

// ingestLoad runs background replace-batch writers over disjoint key
// ranges until stopped. Returns a stop function that joins the writers.
func ingestLoad(st *state.Store, keys, writers int) (stop func()) {
	var done atomic.Bool
	var wg sync.WaitGroup
	per := keys / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := make([]string, per)
			for k := range names {
				names[k] = fmt.Sprintf("u%05d", w*per+k)
			}
			// Start past the seeded history: Put monotonicity is per key,
			// and every key was seeded with a start at or below keys.
			at := temporal.Instant(keys + 1)
			batch := make([]state.BatchPut, 0, 256)
			for round := int64(0); !done.Load(); round++ {
				batch = batch[:0]
				for k := 0; k < per && k < 256; k++ {
					at++
					batch = append(batch, state.BatchPut{
						Entity: names[(int(round)*256+k)%per], Attr: "value",
						Value: element.Int(round), At: at,
					})
				}
				if err := st.PutBatch(batch); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	return func() {
		done.Store(true)
		wg.Wait()
	}
}

// seededScanStore builds the store the under-ingest rows read: one open
// version per key plus a little superseded history, so scans pay a
// realistic gather.
func seededScanStore(keys int) *state.Store {
	st := state.NewStore()
	batch := make([]state.BatchPut, 0, 512)
	flush := func() {
		if err := st.PutBatch(batch); err != nil {
			panic(err)
		}
		batch = batch[:0]
	}
	for i := 0; i < keys; i++ {
		batch = append(batch, state.BatchPut{
			Entity: fmt.Sprintf("u%05d", i), Attr: "value",
			Value: element.Int(int64(i)), At: temporal.Instant(i + 1),
		})
		if len(batch) == cap(batch) {
			flush()
		}
	}
	flush()
	return st
}

// scanUnderIngest measures wildcard List latency (ns per scan) while
// writers ingest, over the lock-free snapshot path or the lock-all
// baseline.
func scanUnderIngest(lockAll bool, keys, scans, writers int) time.Duration {
	st := seededScanStore(keys)
	stop := ingestLoad(st, keys, writers)
	defer stop()
	start := time.Now()
	for i := 0; i < scans; i++ {
		if lockAll {
			st.ListLockAll(state.WithAttribute("value"))
		} else {
			st.List(state.WithAttribute("value"))
		}
	}
	return time.Since(start)
}

// queryUnderIngest measures on-demand temporal query latency while
// writers ingest: the query is prepared once, and each execution pins a
// fresh snapshot handle (exactly what engine.Query does) and runs the
// partitioned plan against that consistent cut.
func queryUnderIngest(keys, queries, writers int) time.Duration {
	p, err := query.Prepare("SELECT entity, value FROM value")
	if err != nil {
		panic(err)
	}
	st := seededScanStore(keys)
	stop := ingestLoad(st, keys, writers)
	defer stop()
	start := time.Now()
	for i := 0; i < queries; i++ {
		if _, err := p.Exec(query.ExecEnv{
			Store: st.Snapshot(), Now: temporal.Instant(keys + i),
		}); err != nil {
			panic(err)
		}
	}
	return time.Since(start)
}
