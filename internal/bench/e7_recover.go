package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/state"
	"repro/internal/state/segment"
)

// Cold-start recovery rows: how fast an n-element ingest's state comes
// back after a crash. The WAL row replays the full mutation log through
// the store's write paths — the only recovery the system had before the
// segment backend. The segment row opens a durable directory flushed at
// ~95% of the ingest: manifest + segment frames bulk-load (one head
// publication per lineage) and only the final ~5% of the WAL replays.
// The benchrunner gate requires the segment path >= 3x faster; both
// rows run in-process on the same machine and disk, so the ratio is
// hardware-independent in the same sense as the contention invariant.

// recoverFlushFrac is the fraction of the ingest made durable in
// segments before the simulated crash; the rest is the WAL tail.
const recoverFlushFrac = 0.95

// buildRecoveryDirs ingests n elements twice into dir — once through a
// plain engine logging the full WAL, once through a durable engine
// flushed at the last watermark before recoverFlushFrac and then killed
// without Close — and returns the full-WAL path and the durable
// directory.
func buildRecoveryDirs(dir string, n int) (walPath, segDir string) {
	msgs := ingestMessages(n)
	walPath = filepath.Join(dir, "full.log")
	segDir = filepath.Join(dir, "segments")

	l, err := state.CreateLog(walPath)
	if err != nil {
		panic(err)
	}
	walEngine := core.New(core.WithPolicy(core.StateFirst), core.WithLog(l),
		core.WithEmittedRetention(1024))
	if err := walEngine.DeployRules(ingestRules); err != nil {
		panic(err)
	}
	if err := walEngine.Run(msgs); err != nil {
		panic(err)
	}
	if err := l.Close(); err != nil {
		panic(err)
	}

	// The durable twin: identical stream, one flush near the end, then
	// the crash (no Close) — leaving the realistic shape of segments
	// plus a WAL tail.
	split := len(msgs)
	for i := int(float64(len(msgs)) * recoverFlushFrac); i < len(msgs); i++ {
		if msgs[i].IsWatermark {
			split = i + 1
			break
		}
	}
	// Background pulses are disabled (threshold above any possible WAL
	// length): the one explicit FlushAt below is the only flush, so the
	// abandoned engine cannot have a flush in flight racing the measured
	// segment.Open calls on the same directory.
	segEngine := core.New(core.WithPolicy(core.StateFirst),
		core.WithDurableDir(segDir, segment.WithFlushEvery(2*n+16)),
		core.WithEmittedRetention(1024))
	if err := segEngine.DeployRules(ingestRules); err != nil {
		panic(err)
	}
	if err := segEngine.Run(msgs[:split]); err != nil {
		panic(err)
	}
	if err := segEngine.Durable().FlushAt(segEngine.Watermark() - 1); err != nil {
		panic(err)
	}
	if err := segEngine.Run(msgs[split:]); err != nil {
		panic(err)
	}
	// The crash: release the directory lock and descriptors without the
	// final flush, as process death would.
	segEngine.Durable().Abandon()
	return walPath, segDir
}

// recoverWAL measures a full-WAL cold start: fresh store, replay
// everything.
func recoverWAL(walPath string, n int) time.Duration {
	st := state.NewStore()
	start := time.Now()
	applied, err := state.ReplayFile(walPath, st)
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	if keys := st.Stats().Keys; keys == 0 || applied == 0 {
		panic(fmt.Sprintf("recover-wal rebuilt nothing (keys=%d applied=%d of %d)", keys, applied, n))
	}
	return elapsed
}

// recoverSegments measures a durable cold start: segment.Open — manifest,
// frame bulk-load, WAL-tail replay. The opened store is Abandoned, not
// Closed, off the timer: Close flushes, which would advance the durable
// cut and shrink the next pass's work, while Abandon just releases the
// lock and descriptors — and, by closing the WAL under its appender
// token, waits out the deferred tail rewrite so consecutive passes
// never race on the file.
func recoverSegments(segDir string, n int) time.Duration {
	start := time.Now()
	d, err := segment.Open(segDir)
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	if keys := d.Mem().Stats().Keys; keys == 0 {
		panic(fmt.Sprintf("recover-segment rebuilt nothing (n=%d)", n))
	}
	if info := d.Info(); info.Segments == 0 {
		panic("recover-segment found no segments: the workload builder failed to flush")
	}
	d.Abandon()
	return elapsed
}

// buildFullFlushDir ingests n elements into a durable engine and
// flushes EVERYTHING before abandoning: the resulting directory is pure
// segment frames with an empty WAL tail, so a cold start is dominated
// by frame decode — the stage the parallel loader shards across
// workers. (The recover-segment dir keeps its 5% WAL tail instead; its
// serial tail replay would mask the load-parallelism ratio.)
func buildFullFlushDir(segDir string, n int) {
	msgs := ingestMessages(n)
	e := core.New(core.WithPolicy(core.StateFirst),
		core.WithDurableDir(segDir, segment.WithFlushEvery(2*n+16)),
		core.WithEmittedRetention(1024))
	if err := e.DeployRules(ingestRules); err != nil {
		panic(err)
	}
	if err := e.Run(msgs); err != nil {
		panic(err)
	}
	d := e.Durable()
	if err := d.FlushAt(d.Mem().Snapshot().At()); err != nil {
		panic(err)
	}
	d.Abandon()
}

// recoverSegmentsWorkers measures a durable cold start at an explicit
// frame-load parallelism (0 = the GOMAXPROCS default, 1 = serial).
func recoverSegmentsWorkers(segDir string, n, workers int) time.Duration {
	start := time.Now()
	d, err := segment.Open(segDir, segment.WithLoadParallelism(workers))
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	if keys := d.Mem().Stats().Keys; keys == 0 {
		panic(fmt.Sprintf("recover-par rebuilt nothing (n=%d workers=%d)", n, workers))
	}
	d.Abandon()
	return elapsed
}

// addRecoveryRows builds the recovery workloads once and appends the
// cold-start rows through add: full-WAL vs segment directory, then the
// parallel vs serial frame-load pair on a fully flushed directory.
func addRecoveryRows(add func(name string, ops int, measure func() time.Duration), scale float64) {
	n := scaleInt(100_000, scale)
	dir, err := os.MkdirTemp("", "recover-bench-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	walPath, segDir := buildRecoveryDirs(dir, n)
	add("e7/recover-wal", n, func() time.Duration { return recoverWAL(walPath, n) })
	add("e7/recover-segment", n, func() time.Duration { return recoverSegments(segDir, n) })

	parDir := filepath.Join(dir, "segments-full")
	buildFullFlushDir(parDir, n)
	add("e7/recover-par", n, func() time.Duration { return recoverSegmentsWorkers(parDir, n, 0) })
	add("e7/recover-serial", n, func() time.Duration { return recoverSegmentsWorkers(parDir, n, 1) })
}
