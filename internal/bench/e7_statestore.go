package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/element"
	"repro/internal/metrics"
	"repro/internal/state"
	"repro/internal/temporal"
)

// E7StateStore measures the cost of the enabling substrate: the state
// repository itself. The paper's model stands or falls with the overhead
// of keeping explicit, temporally annotated state, so we measure mutation
// throughput across key populations, the effect of write-ahead logging,
// compaction, and recovery (log replay and snapshot load) — plus, since
// the store grew its transaction-time dimension, the read cost of the
// bitemporal axes: current-belief point reads against the live index
// versus transaction-time-pinned reads scanning record history. The
// final section measures multi-goroutine contention: the hash-partitioned
// sharded store against a 1-shard (single global lock) baseline on
// identical parallel read and write workloads.
func E7StateStore(scale float64) *metrics.Table {
	tab := metrics.NewTable("E7 — state repository cost",
		"keys", "mode", "ops", "ops/s", "recovery", "versions-after")

	ops := scaleInt(200_000, scale)
	for _, keys := range []int{1_000, 10_000, 100_000} {
		// In-memory mutation throughput.
		st, elapsed := mutateStore(keys, ops, nil)
		tab.AddRow(keys, "in-memory", ops, float64(ops)/elapsed.Seconds(), "-", st.Stats().Versions)

		// Bitemporal reads: retroactively correct 5% of keys, then
		// measure point reads with and without a pinned belief.
		correctRetroactively(st, keys, keys/20+1)
		reads := ops / 10
		elapsed = findThroughput(st, keys, reads, false)
		tab.AddRow(keys, "find-current", reads, float64(reads)/elapsed.Seconds(), "-", st.Stats().Versions)
		elapsed = findThroughput(st, keys, reads, true)
		tab.AddRow(keys, "find-systime", reads, float64(reads)/elapsed.Seconds(), "-", st.Stats().Versions)

		// Logged mutation throughput + replay recovery.
		var buf bytes.Buffer
		stLogged, elapsedLogged := mutateStore(keys, ops, state.NewLog(&buf))
		t0 := time.Now()
		restored := state.NewStore()
		if _, err := state.Replay(bytes.NewReader(buf.Bytes()), restored); err != nil {
			panic(err)
		}
		recovery := time.Since(t0)
		tab.AddRow(keys, "logged", ops, float64(ops)/elapsedLogged.Seconds(),
			recovery.Round(time.Millisecond).String(), restored.Stats().Versions)

		// Compaction: drop closed history before the midpoint, then
		// snapshot-based recovery of what remains.
		mid := temporal.Instant(ops / 2)
		removed := stLogged.CompactBefore(mid)
		var snap bytes.Buffer
		if err := stLogged.WriteSnapshot(&snap); err != nil {
			panic(err)
		}
		t0 = time.Now()
		fromSnap := state.NewStore()
		if err := state.ReadSnapshot(bytes.NewReader(snap.Bytes()), fromSnap); err != nil {
			panic(err)
		}
		snapRecovery := time.Since(t0)
		tab.AddRow(keys, fmt.Sprintf("compacted(-%d)", removed), ops,
			0.0, snapRecovery.Round(time.Millisecond).String(), fromSnap.Stats().Versions)
	}

	// Parallel contention: identical 8-goroutine workloads against the
	// sharded store and the single-lock baseline. On multi-core machines
	// the sharded rows scale with cores; on one core they bound the
	// striping overhead.
	parKeys := scaleInt(10_000, scale)
	parOps := scaleInt(200_000, scale)
	for _, cfg := range []struct {
		name   string
		shards int
	}{{"sharded", 0}, {"single-lock", 1}} {
		pst := state.NewStoreWithShards(cfg.shards)
		seedCurrentValues(pst, parKeys)
		elapsed := parallelFinds(pst, parKeys, parOps, regressionWorkers)
		tab.AddRow(parKeys, "find-par8/"+cfg.name, parOps,
			float64(parOps)/elapsed.Seconds(), "-", pst.Stats().Versions)
		wst := state.NewStoreWithShards(cfg.shards)
		elapsed = parallelPuts(wst, parOps, regressionWorkers)
		tab.AddRow(parKeys, "put-par8/"+cfg.name, parOps,
			float64(parOps)/elapsed.Seconds(), "-", wst.Stats().Versions)
	}
	return tab
}

// correctRetroactively issues n bounded retroactive corrections through
// the option-based StateDB surface, superseding slices of existing
// history at transaction times after every original write.
func correctRetroactively(st *state.Store, keys, n int) {
	db := st.DB()
	tx := st.Stats().TxHigh + 1
	for c := 0; c < n; c++ {
		name := fmt.Sprintf("k%06d", c%keys)
		from := temporal.Instant(1 + c%64)
		if err := db.Put(name, "value", element.Int(int64(-c)),
			state.WithValidTime(from), state.WithEndValidTime(from+4),
			state.WithTransactionTime(tx+temporal.Instant(c))); err != nil {
			panic(err)
		}
	}
}

// findThroughput times point reads over a mutateStore-shaped store:
// current-belief reads against the live index, or belief-pinned reads
// (systime) that consult the record history. Key names are pre-rendered
// so the loop measures store cost, not fmt.Sprintf.
func findThroughput(st *state.Store, keys, reads int, systime bool) time.Duration {
	db := st.DB()
	names := keyNames(keys)
	tx := st.Stats().TxHigh
	start := time.Now()
	for i := 0; i < reads; i++ {
		name := names[i%keys]
		if systime {
			db.Find(name, "value", state.AsOfValidTime(temporal.Instant(i%64)),
				state.AsOfTransactionTime(tx))
		} else {
			db.Find(name, "value")
		}
	}
	return time.Since(start)
}

// mutateStore performs ops mutations (80% put / 10% bounded assert on a
// side attribute / 10% retract) over the given key population.
func mutateStore(keys, ops int, log *state.Log) (*state.Store, time.Duration) {
	st := state.NewStore()
	if log != nil {
		st.AttachLog(log)
	}
	rng := rand.New(rand.NewSource(11))
	clock := make([]temporal.Instant, keys)
	start := time.Now()
	for i := 0; i < ops; i++ {
		k := rng.Intn(keys)
		clock[k] += temporal.Instant(1 + rng.Int63n(16))
		name := fmt.Sprintf("k%06d", k)
		switch {
		case i%10 == 8:
			f := element.NewFact(name, "bounded", element.Int(int64(i)),
				temporal.NewInterval(clock[k], clock[k]+8))
			clock[k] += 8
			if err := st.Assert(f); err != nil {
				panic(err)
			}
		case i%10 == 9:
			// Retract may fail when nothing is current; that is fine.
			_ = st.Retract(name, "value", clock[k])
		default:
			if err := st.Put(name, "value", element.Int(rng.Int63()), clock[k]); err != nil {
				panic(err)
			}
		}
	}
	return st, time.Since(start)
}
