package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/window"
	"repro/internal/workload"
)

// E2Contradictions tests the paper's second claim (§1): with a fixed time
// window over position events, "it is possible that a visitor moves
// through multiple rooms within the scope of a single window. Considering
// all the events generated within this fixed time frame as valid would
// lead to the erroneous conclusion that the visitor is simultaneously in
// multiple rooms."
//
// For each window size we count, over all window evaluations, the visitor
// observations that are contradictory (more than one room deemed valid)
// and those that are stale or wrong versus ground truth. The same stream
// processed by the explicit-state engine (REPLACE rule) is probed at the
// same instants.
func E2Contradictions(scale float64) *metrics.Table {
	cfg := workload.DefaultBuilding()
	cfg.Visitors = scaleInt(cfg.Visitors, scale)
	els, truth := workload.Building(cfg)

	tab := metrics.NewTable("E2 — contradictory conclusions (security §1)",
		"mechanism", "observations", "contradictory%", "wrong%", "ns/event")

	for _, mins := range []int64{1, 5, 10} {
		size := temporal.Instant(time.Duration(mins) * time.Minute)
		obs, contra, wrong, perEvent := windowPositions(els, truth, size)
		tab.AddRow(fmt.Sprintf("tumbling-%dm", mins), obs, pct(contra, obs), pct(wrong, obs), fmtDur(perEvent))
	}

	obs, contra, wrong, perEvent := statePositions(els, truth)
	tab.AddRow("explicit-state", obs, pct(contra, obs), pct(wrong, obs), fmtDur(perEvent))
	return tab
}

// windowPositions evaluates the window paradigm: at each window close,
// every RoomEntry in the window is "valid", so a visitor's rooms are all
// rooms seen in the window. An observation is one (window, visitor) pair;
// it is contradictory if >1 room, wrong if the single room differs from
// ground truth at the window end.
func windowPositions(els []*element.Element, truth []workload.Stay, size temporal.Instant) (obs, contra, wrong int, perEvent float64) {
	w := window.NewTumblingTime(size)
	start := time.Now()
	handle := func(panes []window.Pane) {
		for _, p := range panes {
			rooms := map[string]map[string]bool{}
			for _, el := range p.Elements {
				if el.Stream != "RoomEntry" {
					continue
				}
				v := el.MustGet("visitor").MustString()
				if rooms[v] == nil {
					rooms[v] = map[string]bool{}
				}
				rooms[v][el.MustGet("room").MustString()] = true
			}
			probe := p.Window.End - 1
			for v, rs := range rooms {
				obs++
				if len(rs) > 1 {
					contra++
					continue
				}
				for r := range rs {
					if workload.TrueRoomAt(truth, v, probe) != r {
						wrong++
					}
				}
			}
		}
	}
	for _, el := range els {
		handle(w.Observe(el))
		handle(w.AdvanceTo(el.Timestamp))
	}
	handle(w.AdvanceTo(els[len(els)-1].Timestamp + size))
	perEvent = float64(time.Since(start).Nanoseconds()) / float64(len(els))
	return obs, contra, wrong, perEvent
}

// statePositions runs the explicit-state engine with the paper's REPLACE
// rule and probes the state at the same cadence (every minute of
// application time). One observation = one (probe, visitor) with a
// current position; contradiction is impossible by construction (the
// store holds one valid version per key), so we also verify correctness
// against ground truth.
func statePositions(els []*element.Element, truth []workload.Stay) (obs, contra, wrong int, perEvent float64) {
	e := core.New(core.StateFirst)
	if err := e.DeployRules(`
RULE position ON RoomEntry AS r THEN REPLACE position(r.visitor) = r.room
RULE exit ON BuildingExit AS r THEN RETRACT position(r.visitor)`); err != nil {
		panic(err)
	}
	probeEvery := temporal.Instant(time.Minute)
	nextProbe := els[0].Timestamp + probeEvery
	start := time.Now()
	probe := func(at temporal.Instant) {
		for _, f := range e.Store().AsOfByAttribute("position", at) {
			obs++
			seen := map[string]bool{}
			seen[f.Value.MustString()] = true
			if len(seen) > 1 {
				contra++
				continue
			}
			if workload.TrueRoomAt(truth, f.Entity, at) != f.Value.MustString() {
				wrong++
			}
		}
	}
	for _, el := range els {
		for el.Timestamp >= nextProbe {
			probe(nextProbe - 1)
			nextProbe += probeEvery
		}
		if err := e.Process(stream.ElementMsg(el)); err != nil {
			panic(err)
		}
	}
	probe(els[len(els)-1].Timestamp)
	perEvent = float64(time.Since(start).Nanoseconds()) / float64(len(els))
	return obs, contra, wrong, perEvent
}
