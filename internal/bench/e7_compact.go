package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/state/segment"
	"repro/internal/temporal"
)

// Compaction and segmented-WAL rows (PR 9).
//
// e7/wal-truncate/{tail-1x,tail-8x} time Log.TruncateBefore over WAL
// chains holding 1x vs 8x the records in the SAME number of files (the
// rotation threshold scales with the record count). Truncation is
// whole-file drops, so its cost is O(files), independent of how many
// records those files hold — the benchrunner gate bounds the 8x/1x
// ratio, which an O(records) in-place tail rewrite would blow past.
//
// e7/compact-reclaim/{unmerged,merged} open the same durable directory
// before and after a full Compact. Ops carries the catalog's FrameSlots
// at restart — the deterministic measure of restart load — and the gate
// requires the merged count at or below half the unmerged one.

// walTruncateRecords is the 1x-leg record count; the 8x leg writes
// eight times as many into the same number of files.
const walTruncateRecords = 20_000

// walTruncateSteps is how many TruncateBefore calls each pass times,
// walking the cut across the chain.
const walTruncateSteps = 16

// walTruncateChain measures one pass: build a segmented WAL of records
// mutations rotated at rotateBytes, then time walTruncateSteps
// truncation calls sweeping the cut from front to back.
func walTruncateChain(records int, rotateBytes int64) time.Duration {
	dir, err := os.MkdirTemp("", "wal-truncate-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	st := state.NewStore()
	l, _, err := state.RecoverWALDir(dir, st, temporal.MinInstant, rotateBytes)
	if err != nil {
		panic(err)
	}
	st.AttachLog(l)
	for i := 1; i <= records; i++ {
		if err := st.Put(fmt.Sprintf("e%04d", i%512), "v", element.Int(int64(i)),
			temporal.Instant(i)); err != nil {
			panic(err)
		}
	}
	if files := l.Files(); files < 4 {
		panic(fmt.Sprintf("wal-truncate: chain too short to measure (%d files)", files))
	}

	start := time.Now()
	for k := 1; k <= walTruncateSteps; k++ {
		cut := temporal.Instant(records * k / walTruncateSteps)
		if err := l.TruncateBefore(cut); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)

	if l.DroppedFiles() == 0 {
		panic("wal-truncate: truncation dropped no files")
	}
	if err := l.Close(); err != nil {
		panic(err)
	}
	return elapsed
}

// addWALTruncateRows appends the two truncation legs. The workload is
// deliberately NOT scaled: the rows exist for their same-run ratio
// gate, which needs a chain deep enough for the clock to resolve —
// at -scale 0.25 a scaled chain would be a handful of files and pure
// noise. The fixed build is cheap (one in-memory store, one WAL).
func addWALTruncateRows(add func(name string, ops int, measure func() time.Duration), scale float64) {
	_ = scale
	// ~8 KiB per file at the 1x leg keeps the file count identical
	// across legs while the record count varies 8x.
	add("e7/wal-truncate/tail-1x", walTruncateSteps, func() time.Duration {
		return walTruncateChain(walTruncateRecords, 8<<10)
	})
	add("e7/wal-truncate/tail-8x", walTruncateSteps, func() time.Duration {
		return walTruncateChain(8*walTruncateRecords, 64<<10)
	})
}

// compactReclaimRounds is how many flush generations the reclaim
// workload lays down; each rewrites every shared key, so all but the
// newest copy of the shared working set is dead weight.
const compactReclaimRounds = 8

// buildReclaimDir lays down compactReclaimRounds segments of unique +
// shared keys and returns the per-round key counts used. Like the
// truncation rows, the workload is fixed rather than scaled: the gate
// compares deterministic frame-slot counts, but the per-slot ns/op
// still lands in baseline comparisons, and a scaled-down merged
// directory opens in microseconds — pure timer noise.
func buildReclaimDir(dir string, scale float64) (unique, shared int) {
	_ = scale
	unique = 400
	shared = 3_600
	d, err := segment.Open(dir)
	if err != nil {
		panic(err)
	}
	db := d.Mem().DB()
	tx := temporal.Instant(0)
	put := func(entity string) {
		tx++
		if err := db.Put(entity, "v", element.Int(int64(tx)),
			state.WithValidTime(tx), state.WithTransactionTime(tx)); err != nil {
			panic(err)
		}
	}
	for r := 0; r < compactReclaimRounds; r++ {
		for i := 0; i < unique; i++ {
			put(fmt.Sprintf("u%d-%05d", r, i))
		}
		for i := 0; i < shared; i++ {
			put(fmt.Sprintf("s%05d", i))
		}
		if err := d.FlushAt(tx); err != nil {
			panic(err)
		}
	}
	if err := d.Close(); err != nil {
		panic(err)
	}
	return unique, shared
}

// openReclaimDir measures one cold start of the reclaim directory and
// reports the catalog's frame-slot count alongside the elapsed time.
func openReclaimDir(dir string) (time.Duration, int) {
	start := time.Now()
	d, err := segment.Open(dir)
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	slots := d.Info().FrameSlots
	d.Abandon()
	return elapsed, slots
}

// addCompactReclaimRows builds the reclaim workload, measures the
// unmerged restart, compacts, and measures the merged restart. The rows
// carry FrameSlots as Ops — the deterministic restart-load figure the
// benchrunner gate compares.
func addCompactReclaimRows(rep *RegressionReport, scale float64) {
	dir, err := os.MkdirTemp("", "compact-reclaim-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	buildReclaimDir(dir, scale)

	measure := func(name string) {
		elapsed, slots := openReclaimDir(dir)
		for i := 1; i < 5; i++ {
			if again, _ := openReclaimDir(dir); again < elapsed {
				elapsed = again
			}
		}
		ns := float64(elapsed.Nanoseconds()) / float64(slots)
		rep.Results = append(rep.Results, Measurement{
			Name: name, Ops: slots, NsPerOp: ns, OpsPerSec: 1e9 / ns,
		})
	}
	measure("e7/compact-reclaim/unmerged")

	d, err := segment.Open(dir)
	if err != nil {
		panic(err)
	}
	if err := d.Compact(); err != nil {
		panic(err)
	}
	if info := d.Info(); info.Merges != 1 {
		panic(fmt.Sprintf("compact-reclaim: merge did not commit: %+v", info))
	}
	if err := d.Close(); err != nil {
		panic(err)
	}
	measure("e7/compact-reclaim/merged")
}
