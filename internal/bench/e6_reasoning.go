package bench

import (
	"fmt"
	"time"

	"repro/internal/element"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/reason"
	"repro/internal/state"
	"repro/internal/temporal"
)

// E6Reasoning measures the reasoning component of Figure 1 on the §3.1
// product-taxonomy scenario: "the ontology might include a taxonomy to
// organize the products according to different classification criteria
// and to automatically derive sub-classes relations". We build complete
// k-ary taxonomies of increasing depth, type products at the leaves, and
// measure materialization cost, derived fact volume, and class-membership
// query latency with and without inference.
func E6Reasoning(scale float64) *metrics.Table {
	tab := metrics.NewTable("E6 — taxonomy reasoning (§3, §3.1)",
		"depth", "fanout", "products", "derived", "materialize", "query", "query+inference")

	products := scaleInt(500, scale)
	for _, shape := range []struct{ depth, fanout int }{
		{2, 4}, {4, 3}, {8, 2},
	} {
		st := state.NewStore()
		ont := reason.NewOntology()
		leaves := buildTaxonomy(ont, shape.depth, shape.fanout)
		r := reason.NewReasoner(st, ont)
		for i := 0; i < products; i++ {
			leaf := leaves[i%len(leaves)]
			st.Put(fmt.Sprintf("product%05d", i), reason.TypeAttribute,
				element.String(leaf), temporal.Instant(i))
		}
		t0 := time.Now()
		derived := r.Materialize()
		mat := time.Since(t0)

		ex := &query.Executor{Store: st, Reasoner: r, Now: temporal.Instant(products + 1)}
		const probes = 20
		var plain, inferred metrics.Histogram
		for i := 0; i < probes; i++ {
			t0 = time.Now()
			if _, err := ex.Run("SELECT entity FROM type WHERE value = 'root'"); err != nil {
				panic(err)
			}
			plain.Record(time.Since(t0))
			t0 = time.Now()
			if _, err := ex.Run("SELECT entity FROM type WHERE value = 'root' WITH INFERENCE"); err != nil {
				panic(err)
			}
			inferred.Record(time.Since(t0))
		}
		tab.AddRow(shape.depth, shape.fanout, products, derived,
			mat.Round(time.Microsecond).String(),
			plain.Mean().String(), inferred.Mean().String())
	}
	return tab
}

// buildTaxonomy creates a complete taxonomy of the given depth and fanout
// rooted at "root" and returns the leaf class names.
func buildTaxonomy(ont *reason.Ontology, depth, fanout int) []string {
	level := []string{"root"}
	for d := 1; d <= depth; d++ {
		var next []string
		for _, parent := range level {
			for f := 0; f < fanout; f++ {
				child := fmt.Sprintf("%s_%d", parent, f)
				if err := ont.SubClassOf(child, parent); err != nil {
					panic(err)
				}
				next = append(next, child)
			}
		}
		level = next
	}
	return level
}
