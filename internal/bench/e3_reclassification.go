package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/window"
	"repro/internal/workload"
)

// E3Reclassification tests the §3.1 case study: sales trends must be
// computed against "the most recent classification of products ...
// independently from the time when such information was generated". A
// window-scoped system only sees the Reclassify events inside the current
// window, so products reclassified earlier are attributed to an unknown
// (or stale) class. The explicit-state engine routes Reclassify events
// into state management rules and enriches each sale from the state, so
// attribution follows the catalogue exactly.
//
// Reported per mechanism and reclassification rate: % of sales attributed
// to the wrong class and % with no class at all.
func E3Reclassification(scale float64) *metrics.Table {
	tab := metrics.NewTable("E3 — sales attribution under reclassification (§3.1)",
		"mechanism", "reclassify-rate", "sales", "misattributed%", "unclassified%", "ns/event")

	for _, every := range []int{200, 50, 10} {
		cfg := workload.DefaultEcommerce()
		cfg.Sales = scaleInt(cfg.Sales, scale)
		cfg.ReclassifyEvery = every
		els, truth := workload.Ecommerce(cfg)
		rate := fmt.Sprintf("1/%d sales", every)

		sales, wrong, missing, perEvent := windowAttribution(els, truth, temporal.Instant(time.Minute))
		tab.AddRow("window-1m", rate, sales, pct(wrong, sales), pct(missing, sales), fmtDur(perEvent))

		sales, wrong, missing, perEvent = stateAttribution(els, truth)
		tab.AddRow("explicit-state", rate, sales, pct(wrong, sales), pct(missing, sales), fmtDur(perEvent))
	}
	return tab
}

// windowAttribution implements the window-only system the paper critiques:
// both streams enter one window, and a sale's class is the product's
// latest Reclassify event within the same window.
func windowAttribution(els []*element.Element, truth []workload.Classification, size temporal.Instant) (sales, wrong, missing int, perEvent float64) {
	w := window.NewTumblingTime(size)
	start := time.Now()
	handle := func(panes []window.Pane) {
		for _, p := range panes {
			class := map[string]string{}
			for _, el := range p.Elements { // pane elements are time-ordered
				switch el.Stream {
				case "Reclassify":
					class[el.MustGet("product").MustString()] = el.MustGet("class").MustString()
				case "Sale":
					sales++
					prod := el.MustGet("product").MustString()
					got, ok := class[prod]
					if !ok {
						missing++
						continue
					}
					if got != workload.TrueClassAt(truth, prod, el.Timestamp) {
						wrong++
					}
				}
			}
		}
	}
	for _, el := range els {
		handle(w.Observe(el))
		handle(w.AdvanceTo(el.Timestamp))
	}
	handle(w.AdvanceTo(els[len(els)-1].Timestamp + size))
	perEvent = float64(time.Since(start).Nanoseconds()) / float64(len(els))
	return sales, wrong, missing, perEvent
}

// stateAttribution runs the explicit-state engine: a state management rule
// keeps class(product) current, and the sale processor enriches from
// state at sale time.
func stateAttribution(els []*element.Element, truth []workload.Classification) (sales, wrong, missing int, perEvent float64) {
	e := core.New(core.StateFirst)
	if err := e.DeployRules(`
RULE classify ON Reclassify AS c THEN REPLACE class(c.product) = c.class`); err != nil {
		panic(err)
	}
	if err := e.DeployProcessor(&core.Processor{
		Name:   "sales",
		Source: "Sale",
		Enrich: []core.EnrichSpec{{Attr: "class", EntityField: "product", As: "class"}},
	}); err != nil {
		panic(err)
	}
	start := time.Now()
	if err := e.Run(stream.FromElements(els)); err != nil {
		panic(err)
	}
	perEvent = float64(time.Since(start).Nanoseconds()) / float64(len(els))
	for _, el := range e.Output("sales") {
		sales++
		cls, _ := el.Get("class")
		if cls.IsNull() {
			missing++
			continue
		}
		prod := el.MustGet("product").MustString()
		if cls.MustString() != workload.TrueClassAt(truth, prod, el.Timestamp) {
			wrong++
		}
	}
	return sales, wrong, missing, perEvent
}
