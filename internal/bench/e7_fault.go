package bench

import (
	"errors"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/state/segment"
	"repro/internal/temporal"
	"repro/internal/vfs"
)

// Fault-layer cost rows: what the injection seam and the degraded mode
// cost when nothing is actually failing.
//
// The flush pair runs an identical ingest-and-flush workload through the
// production vfs.OS passthrough and through an empty FaultFS wrap (rules
// armed: none) — the per-op dispatch cost of keeping fault injection
// always-pluggable. The benchrunner gate bounds the wrap at
// vfsOverheadMax of the plain leg.
//
// The ingest pair runs the end-to-end pipeline against a durable engine
// healthy vs latched degraded (a scripted WAL fault trips dropping mode
// before the timer starts): degraded ingest sheds the WAL encode+write
// per element, so it must stay within degradedIngestMax of the healthy
// leg — degraded mode is a pressure valve, never a new bottleneck.

// flushBatches is how many FlushAt cycles the flush rows spread their
// writes over, so the measured path covers segment creation, manifest
// commit, and WAL truncation — not just WAL appends.
const flushBatches = 8

// flushThroughput writes ops versions over keys lineages into a fresh
// durable store on fs, flushing flushBatches times along the way, and
// returns the wall-clock time for the whole ingest-and-flush sequence.
func flushThroughput(fs vfs.FS, keys, ops int) time.Duration {
	dir, err := os.MkdirTemp("", "flush-bench-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	// Background pulses disabled: the explicit FlushAt calls below are the
	// only flushes, so both legs do identical work.
	opts := []segment.Option{segment.WithFlushEvery(2*ops + 16)}
	if fs != nil {
		opts = append(opts, segment.WithFS(fs))
	}
	d, err := segment.Open(dir, opts...)
	if err != nil {
		panic(err)
	}
	names := keyNames(keys)
	per := ops / flushBatches
	i := 0
	start := time.Now()
	for f := 0; f < flushBatches; f++ {
		for j := 0; j < per; j++ {
			if err := d.Mem().Put(names[i%keys], "value", element.Int(int64(i)),
				temporal.Instant(i+1)); err != nil {
				panic(err)
			}
			i++
		}
		if err := d.FlushAt(d.Mem().Snapshot().At()); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	d.Abandon()
	return elapsed
}

// ingestDurableRun runs n pipeline elements into a durable engine and
// returns the timed span. With degrade set, a scripted fault kills the
// first WAL write during an untimed prelude batch, so the engine enters
// degraded mode (WAL dropping, flushes parked) before the timer starts
// and the measured span is pure degraded-mode ingest.
func ingestDurableRun(n int, degrade bool) time.Duration {
	dir, err := os.MkdirTemp("", "ingest-durable-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	pre := 0
	opts := []segment.Option{segment.WithFlushEvery(2*n + ingestWMEvery + 16)}
	if degrade {
		pre = ingestWMEvery + 1
		ffs := vfs.NewFaultFS(vfs.OS)
		ffs.AddRule(vfs.Rule{Op: vfs.OpWrite, Path: "wal.*", Count: 1,
			Err: errors.New("bench: scripted wal fault")})
		opts = append(opts, segment.WithFS(ffs))
	}
	msgs := ingestMessages(n + pre)
	e := core.New(core.WithPolicy(core.StateFirst),
		core.WithDurableDir(dir, opts...), core.WithEmittedRetention(1024))
	if err := e.DeployRules(ingestRules); err != nil {
		panic(err)
	}
	if degrade {
		// The prelude's first state mutation hits the scripted fault and
		// latches degraded mode on the appending goroutine — off the timer.
		if err := e.Run(msgs[:pre]); err != nil {
			panic(err)
		}
		if e.Durable().Degraded() == nil {
			panic("ingest-degraded: the scripted WAL fault did not latch degraded mode")
		}
	}
	start := time.Now()
	if err := e.Run(msgs[pre:]); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	// Release the lock and descriptors without a parting flush, which
	// would only add noise after the timed span.
	e.Durable().Abandon()
	return elapsed
}

// addFaultRows appends the fault-layer cost rows through add.
func addFaultRows(add func(name string, ops int, measure func() time.Duration), scale float64) {
	keys := scaleInt(4_096, scale)
	flushOps := scaleInt(48_000, scale)
	add("e7/flush-os", flushOps, func() time.Duration {
		return flushThroughput(vfs.OS, keys, flushOps)
	})
	add("e7/flush-vfs-overhead", flushOps, func() time.Duration {
		// A fresh wrap per pass: rule/stat state never accumulates.
		return flushThroughput(vfs.NewFaultFS(vfs.OS), keys, flushOps)
	})

	n := scaleInt(100_000, scale)
	add("e7/ingest-durable", n, func() time.Duration {
		return ingestDurableRun(n, false)
	})
	add("e7/ingest-degraded", n, func() time.Duration {
		return ingestDurableRun(n, true)
	})
}
