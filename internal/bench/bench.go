// Package bench implements the experiment harness: one function per
// experiment E1-E10 of DESIGN.md, each returning an aligned table in the
// format recorded in EXPERIMENTS.md.
//
// The paper (an EDBT 2017 vision poster) contains no quantitative
// evaluation, so each experiment operationalizes one of its claims or use
// cases, always contrasting a window-based baseline (§2) with the
// explicit-state system (§3). cmd/benchrunner prints every table;
// bench_test.go wraps the same functions as testing.B benchmarks.
package bench

import (
	"fmt"

	"repro/internal/metrics"
)

// Experiment is one runnable experiment.
type Experiment struct {
	// ID is the experiment identifier (E1..E9).
	ID string
	// Claim cites the paper locus the experiment tests.
	Claim string
	// Run executes the experiment and returns its report table. The scale
	// factor shrinks workloads for quick runs (1 = full size used in
	// EXPERIMENTS.md).
	Run func(scale float64) *metrics.Table
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Claim: "§1: fixed windows mis-scope sessions", Run: E1SessionScoping},
		{ID: "E2", Claim: "§1: windows infer contradictory positions", Run: E2Contradictions},
		{ID: "E3", Claim: "§3.1: state keeps classifications current", Run: E3Reclassification},
		{ID: "E4", Claim: "§3.2: queryable state (current + historical)", Run: E4StateQuery},
		{ID: "E5", Claim: "§1/§5: state gating limits processed data", Run: E5StateGating},
		{ID: "E6", Claim: "§3: reasoning derives implicit knowledge", Run: E6Reasoning},
		{ID: "E7", Claim: "state repository cost (enabling substrate)", Run: E7StateStore},
		{ID: "E8", Claim: "§3.3: interaction-semantics ablation", Run: E8Semantics},
		{ID: "E9", Claim: "§2/§4: windowing-mechanism landscape", Run: E9WindowBaselines},
		{ID: "E10", Claim: "§3.2: cost of the rule-language abstraction", Run: E10RuleOverhead},
	}
}

// scaleInt shrinks a workload dimension by the scale factor, staying >= 1.
func scaleInt(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		return 1
	}
	return v
}

func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

func fmtDur(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	}
	return fmt.Sprintf("%.0fns", ns)
}
