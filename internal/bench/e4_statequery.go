package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/element"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/state"
	"repro/internal/temporal"
)

// E4StateQuery measures the §3.2 "queryable state" benefit: the state
// repository answers on-demand queries over both current state and
// historical data. We populate stores of increasing history size and
// measure point lookups (current and as-of), attribute scans, and the
// query language end-to-end (parse + plan + execute).
func E4StateQuery(scale float64) *metrics.Table {
	tab := metrics.NewTable("E4 — state query performance (§3.2)",
		"versions", "current-lookup", "asof-lookup", "attr-scan", "lang-query", "lookups/s")

	for _, versions := range []int{10_000, 100_000, 400_000} {
		n := scaleInt(versions, scale)
		st, keys, horizon := populateStore(n)
		rng := rand.New(rand.NewSource(7))

		const probes = 2000
		var curH, asofH, scanH, langH metrics.Histogram
		for i := 0; i < probes; i++ {
			k := keys[rng.Intn(len(keys))]
			t0 := time.Now()
			st.Current(k, "value")
			curH.Record(time.Since(t0))

			at := temporal.Instant(rng.Int63n(int64(horizon)))
			t0 = time.Now()
			st.ValidAt(k, "value", at)
			asofH.Record(time.Since(t0))
		}
		for i := 0; i < 50; i++ {
			t0 := time.Now()
			st.CurrentByAttribute("value")
			scanH.Record(time.Since(t0))
		}
		ex := &query.Executor{Store: st, Now: horizon}
		for i := 0; i < 50; i++ {
			at := rng.Int63n(int64(horizon))
			t0 := time.Now()
			if _, err := ex.Run(fmt.Sprintf(
				"SELECT entity, value FROM value ASOF %d LIMIT 10", at)); err != nil {
				panic(err)
			}
			langH.Record(time.Since(t0))
		}
		perSec := 0.0
		if m := asofH.Mean(); m > 0 {
			perSec = float64(time.Second) / float64(m)
		}
		tab.AddRow(n, curH.Mean().String(), asofH.Mean().String(),
			scanH.Mean().String(), langH.Mean().String(), perSec)
	}
	return tab
}

// populateStore fills a store with n versions spread over 1000 keys via
// replace-semantics puts, returning the store, the key names, and the
// time horizon.
func populateStore(n int) (*state.Store, []string, temporal.Instant) {
	st := state.NewStore()
	const keyCount = 1000
	keys := make([]string, keyCount)
	for i := range keys {
		keys[i] = fmt.Sprintf("entity%04d", i)
	}
	clock := make([]temporal.Instant, keyCount)
	rng := rand.New(rand.NewSource(3))
	var horizon temporal.Instant
	for i := 0; i < n; i++ {
		k := rng.Intn(keyCount)
		clock[k] += temporal.Instant(1 + rng.Int63n(1000))
		if clock[k] > horizon {
			horizon = clock[k]
		}
		if err := st.Put(keys[k], "value", element.Int(rng.Int63n(1_000_000)), clock[k]); err != nil {
			panic(err)
		}
	}
	return st, keys, horizon + 1
}
