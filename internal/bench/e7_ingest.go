package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/lang"
	"repro/internal/state"
	"repro/internal/stream"
	"repro/internal/temporal"
)

// End-to-end ingestion throughput: elements/sec through Engine.Run — the
// paper's Figure-1 pipeline (rules → state repository → stream
// processors) measured as a whole. The workload is the canonical sensor
// shape: a pure REPLACE rule tracking per-sensor state (the group-commit
// hot path), an EMIT rule deriving alert elements, and a gated processor
// reading state per element, with a watermark every ingestWMEvery
// elements delimiting micro-batches.

const (
	ingestEntities = 1_000
	ingestWMEvery  = 512
)

const ingestRules = `
RULE track ON Reading AS r
THEN REPLACE temperature(r.sensor) = r.celsius

RULE spike ON Reading AS r WHERE r.celsius > 95
THEN EMIT Alert(sensor = r.sensor, celsius = r.celsius)
`

// ingestMessages builds n Reading elements round-robined over the sensor
// population with strictly increasing timestamps, watermarked every
// ingestWMEvery elements. Messages are reusable across runs: the engine
// never mutates input elements.
func ingestMessages(n int) []stream.Message {
	names := keyNamesPrefixed("s", ingestEntities)
	schema := element.NewSchema(
		element.Field{Name: "sensor", Kind: element.KindString},
		element.Field{Name: "celsius", Kind: element.KindFloat},
	)
	els := make([]*element.Element, n)
	for i := 0; i < n; i++ {
		els[i] = element.New("Reading", temporal.Instant(i+1),
			element.NewTuple(schema, element.String(names[i%ingestEntities]),
				element.Float(float64(20+i%80))))
	}
	return stream.WithPeriodicWatermarks(els, ingestWMEvery)
}

// ingestEngine deploys the ingest workload's rules and a cheap gated
// processor on a fresh engine with the given worker count.
func ingestEngine(workers int) *core.Engine {
	e := core.New(core.WithPolicy(core.StateFirst), core.WithParallelism(workers),
		core.WithEmittedRetention(1024))
	if err := e.DeployRules(ingestRules); err != nil {
		panic(err)
	}
	gate, err := lang.ParseExpr("e.celsius < -1000") // drops everything: measures the pipeline, not sink retention
	if err != nil {
		panic(err)
	}
	if err := e.DeployProcessor(&core.Processor{Name: "cold", Source: "Reading", Gate: gate}); err != nil {
		panic(err)
	}
	return e
}

// ingestThroughput runs n elements through a fresh engine and reports
// wall-clock time plus allocations per element (heap allocation delta
// over the run, measured on this goroutine's run of the whole pipeline).
func ingestThroughput(workers, n int) (time.Duration, float64) {
	msgs := ingestMessages(n)
	e := ingestEngine(workers)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if err := e.Run(msgs); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed, float64(m1.Mallocs-m0.Mallocs) / float64(n)
}

// putBatchThroughput measures the store-level group commit: ops replace
// writes flushed in micro-batches of ingestWMEvery, against the same
// per-put workload shape as e7/put-seq's inner loop.
func putBatchThroughput(keys, ops int) time.Duration {
	st := state.NewStore()
	names := keyNames(keys)
	batch := make([]state.BatchPut, 0, ingestWMEvery)
	start := time.Now()
	for i := 0; i < ops; i++ {
		batch = append(batch, state.BatchPut{
			Entity: names[i%keys], Attr: "value",
			Value: element.Int(int64(i)), At: temporal.Instant(i + 1),
		})
		if len(batch) == ingestWMEvery {
			if err := st.PutBatch(batch); err != nil {
				panic(err)
			}
			batch = batch[:0]
		}
	}
	if err := st.PutBatch(batch); err != nil {
		panic(err)
	}
	return time.Since(start)
}

// keyNamesPrefixed pre-renders n key names with a prefix.
func keyNamesPrefixed(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%05d", prefix, i)
	}
	return out
}
