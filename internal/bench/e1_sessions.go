package bench

import (
	"fmt"
	"time"

	"repro/internal/element"
	"repro/internal/metrics"
	"repro/internal/state"
	"repro/internal/temporal"
	"repro/internal/window"
	"repro/internal/workload"
)

// E1SessionScoping tests the paper's first claim (§1): a click-stream
// application must "trace a user from the moment when she enters the Web
// site to the moment when she leaves"; a fixed time frame is either too
// short (sessions split) or too large (resources wasted). We scope the
// same click-stream with fixed tumbling windows of several sizes, Dataflow
// session windows, and the explicit-state sessionizer (Enter/Leave rules
// over the state store), and score each against the generated ground
// truth.
//
// Reported per mechanism: exact-session recall (fraction of true sessions
// reproduced exactly), unit precision (fraction of emitted units that are
// exact sessions), and mean buffered elements (the resource overhead of
// holding data the application logic never needed).
func E1SessionScoping(scale float64) *metrics.Table {
	cfg := workload.DefaultClickstream()
	cfg.Users = scaleInt(cfg.Users, scale)
	els, truth := workload.Clickstream(cfg)

	tab := metrics.NewTable("E1 — session scoping (click-stream §1)",
		"mechanism", "units", "exact-recall%", "precision%", "mean-buffered", "ns/event")

	truthIndex := indexSessions(truth)
	userOf := func(el *element.Element) string { return el.MustGet("visitor").MustString() }

	// Fixed tumbling time windows.
	for _, mins := range []int64{1, 5, 15, 60} {
		w := window.NewTumblingTime(temporal.Instant(time.Duration(mins) * time.Minute))
		units, buffered, perEvent := runWindowUnits(w, els, userOf)
		exact, prec := scoreUnits(units, truthIndex)
		tab.AddRow(fmt.Sprintf("tumbling-%dm", mins), len(units),
			pct(exact, len(truth)), pct(prec, len(units)), buffered, fmtDur(perEvent))
	}

	// Session windows (Dataflow [1]): gap-based, content-sensitive.
	sw := window.NewSession(temporal.Instant(30*time.Minute), userOf)
	units, buffered, perEvent := runWindowUnits(sw, els, userOf)
	exact, prec := scoreUnits(units, truthIndex)
	tab.AddRow("session-30m-gap", len(units),
		pct(exact, len(truth)), pct(prec, len(units)), buffered, fmtDur(perEvent))

	// Explicit state: Enter opens a session in the state repository, Leave
	// closes it; the unit is delimited by the data itself, exactly.
	units, buffered, perEvent = runStateSessions(els)
	exact, prec = scoreUnits(units, truthIndex)
	tab.AddRow("explicit-state", len(units),
		pct(exact, len(truth)), pct(prec, len(units)), buffered, fmtDur(perEvent))

	return tab
}

// unit is one scoped group of events for a single user.
type unit struct {
	user   string
	events int
	span   temporal.Interval
}

func indexSessions(truth []workload.Session) map[string]workload.Session {
	idx := make(map[string]workload.Session, len(truth))
	for _, s := range truth {
		idx[fmt.Sprintf("%s/%d/%d", s.User, s.Interval.Start, s.Events)] = s
	}
	return idx
}

// scoreUnits counts units that exactly reproduce a true session (same
// user, same start, same event count). Returns (recallCount, precisionCount):
// they are equal here because exact matches are one-to-one.
func scoreUnits(units []unit, truthIdx map[string]workload.Session) (int, int) {
	exact := 0
	for _, u := range units {
		if _, ok := truthIdx[fmt.Sprintf("%s/%d/%d", u.user, u.span.Start, u.events)]; ok {
			exact++
		}
	}
	return exact, exact
}

// runWindowUnits drives a windower over the stream, splitting each pane by
// user into units. It returns units, the mean buffered element count
// (sampled per event), and mean processing ns/event.
func runWindowUnits(w window.Windower, els []*element.Element, userOf func(*element.Element) string) ([]unit, float64, float64) {
	var units []unit
	var bufferedSum uint64
	start := time.Now()
	emit := func(panes []window.Pane) {
		for _, p := range panes {
			perUser := map[string]*unit{}
			for _, el := range p.Elements {
				u := userOf(el)
				if perUser[u] == nil {
					perUser[u] = &unit{user: u, span: temporal.NewInterval(el.Timestamp, el.Timestamp+1)}
				}
				perUser[u].events++
				perUser[u].span.End = el.Timestamp + 1
			}
			for _, u := range perUser {
				units = append(units, *u)
			}
		}
	}
	for _, el := range els {
		emit(w.Observe(el))
		emit(w.AdvanceTo(el.Timestamp)) // continuous watermark = event time
		bufferedSum += uint64(w.Pending())
	}
	if len(els) > 0 {
		emit(w.AdvanceTo(els[len(els)-1].Timestamp + temporal.Instant(100*time.Hour)))
	}
	elapsed := time.Since(start)
	n := len(els)
	if n == 0 {
		return units, 0, 0
	}
	return units, float64(bufferedSum) / float64(n), float64(elapsed.Nanoseconds()) / float64(n)
}

// runStateSessions scopes sessions with the explicit-state model: the
// session boundary is part of the state, updated by Enter/Leave (state
// management rules in miniature, run against the real store). Buffered
// count is the number of open sessions (state entries), not raw events —
// the system never retains per-event buffers.
func runStateSessions(els []*element.Element) ([]unit, float64, float64) {
	st := state.NewStore()
	var units []unit
	var bufferedSum uint64
	open := 0
	start := time.Now()
	for _, el := range els {
		user := el.MustGet("visitor").MustString()
		switch el.Stream {
		case "Enter":
			st.Put(user, "session_start", element.Time(el.Timestamp), el.Timestamp)
			st.Put(user, "session_events", element.Int(1), el.Timestamp)
			open++
		case "Leave":
			if f, ok := st.Current(user, "session_start"); ok {
				startAt, _ := f.Value.AsTime()
				n := int64(0)
				if c, ok := st.Current(user, "session_events"); ok {
					n = c.Value.MustInt()
				}
				units = append(units, unit{
					user:   user,
					events: int(n) + 1, // + the Leave itself
					span:   temporal.NewInterval(startAt, el.Timestamp+1),
				})
				st.Retract(user, "session_start", el.Timestamp)
				st.Retract(user, "session_events", el.Timestamp)
				open--
			}
		default: // Click, Purchase
			if c, ok := st.Current(user, "session_events"); ok {
				st.Put(user, "session_events", element.Int(c.Value.MustInt()+1), el.Timestamp)
			}
		}
		bufferedSum += uint64(open)
	}
	elapsed := time.Since(start)
	n := len(els)
	if n == 0 {
		return units, 0, 0
	}
	return units, float64(bufferedSum) / float64(n), float64(elapsed.Nanoseconds()) / float64(n)
}
