package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
)

// The benchmark-regression suite: the machine-readable face of the E7
// state-store experiment and the bitemporal read microbenchmarks, emitted
// by `benchrunner -json` and gated in CI against a committed baseline.
// Every row is a (name, ns/op) pair so a baseline comparison is a single
// ratio per row.

// Measurement is one regression-suite row. AllocsPerOp, when nonzero, is
// the heap-allocation count per operation — unlike ns/op it is stable
// across hardware classes, so the gate compares it even when absolute
// timings are not comparable.
type Measurement struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// RegressionReport is the envelope written to BENCH_PR2.json. The
// hardware fields record where the numbers were taken: parallel-row
// ratios are only comparable against baselines from similar machines
// (a single-CPU container cannot show multi-core speedups).
type RegressionReport struct {
	Scale      float64       `json:"scale"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Workers    int           `json:"parallel_workers"`
	Shards     int           `json:"default_shards"`
	Notes      string        `json:"notes,omitempty"`
	Results    []Measurement `json:"results"`
}

// regressionWorkers is the goroutine count of the parallel rows.
const regressionWorkers = 8

// underIngestWriters is the background writer count of the
// scan/query-under-ingest rows (matching the 4-way ingest leg).
const underIngestWriters = 4

// RegressionSuite measures the state-repository hot paths at the given
// scale. Rows:
//
//	e7/put-seq                   sequential mixed mutations (mutateStore)
//	e7/put-batch                 group-committed micro-batch Puts (PutBatch)
//	e7/find-current              point reads against the live index
//	e7/find-systime              belief-pinned point reads
//	e7/find-par8/{sharded,single-lock}  8-goroutine parallel Find
//	e7/put-par8/{sharded,single-lock}   8-goroutine parallel Put
//	e7/ingest-serial             end-to-end Engine.Run, 1 worker (+allocs/op)
//	e7/ingest-par4, ingest-par8  end-to-end Engine.Run, 4/8 workers
//	e7/fanout-1k-subscribers     serial ingest with 1k push subscribers
//	                             (one stalled) on the broker
//	e7/fanout-broadcast-latency  broker mean per-batch dispatch latency
//	e7/scan-under-ingest/{snapshot,lock-all}  wildcard List racing 4 writers
//	e7/query-under-ingest        snapshot-pinned prepared queries racing 4 writers
//	e7/scan-serial, scan-par4    quiet-store snapshot gather, serial vs partitioned
//	e7/query-fullscan, query-indexed  selective range query, scan-and-filter vs
//	                             value-envelope index pruning
//	e7/query-prepared-exec       one prepared Exec end to end (+allocs/op)
//	e7/recover-{wal,segment}     cold-start recovery: full-WAL replay vs
//	                             segment bulk-load + WAL-tail replay
//	e7/recover-{par,serial}      fully flushed cold start, GOMAXPROCS vs
//	                             1 frame-load worker
//	e7/scan-{resident,cold}      selective prepared query over a durable
//	                             directory, all lineages in RAM vs all
//	                             evicted (cold union + envelope pruning)
//	e7/evict-reclaim             per-lineage cost of a full eviction sweep
//	e7/wal-truncate/{tail-1x,tail-8x}  whole-file WAL truncation over equal
//	                             file counts holding 1x vs 8x the records
//	e7/compact-reclaim/{unmerged,merged}  restart frame slots before vs
//	                             after a full segment merge
//	e7/flush-os, flush-vfs-overhead   ingest+flush via the vfs.OS passthrough
//	                             vs an empty fault-injection wrap
//	e7/ingest-durable, ingest-degraded  durable-engine ingest healthy vs
//	                             latched degraded (WAL dropping)
//	bitemporal/find-current, find-asof-valid, find-systime, history
//
// The par8 rows contrast the default sharded store with a 1-shard
// (single-lock) baseline on identical workloads; the ingest rows contrast
// the serial element loop with the watermark-delimited parallel pipeline
// (the par rows only beat serial given >= that many CPUs).
func RegressionSuite(scale float64) *RegressionReport {
	rep := &RegressionReport{
		Scale:      scale,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    regressionWorkers,
		Shards:     state.NewStore().ShardCount(),
	}
	if rep.NumCPU < regressionWorkers {
		rep.Notes = fmt.Sprintf(
			"measured with %d CPU(s): the par8 rows time-share cores, so the sharded/single-lock "+
				"ratio understates the speedup available with >= %d CPUs",
			rep.NumCPU, regressionWorkers)
	}
	// Every row is the best of five passes, and read rows rebuild their
	// store inside the pass: CI runners are noisy neighbors, map seeds
	// and heap layout vary per store, and the minimum over independent
	// builds is the measurement least polluted by either.
	add := func(name string, ops int, measure func() time.Duration) {
		elapsed := measure()
		for i := 1; i < 5; i++ {
			if again := measure(); again < elapsed {
				elapsed = again
			}
		}
		ns := float64(elapsed.Nanoseconds()) / float64(ops)
		rep.Results = append(rep.Results, Measurement{
			Name: name, Ops: ops, NsPerOp: ns, OpsPerSec: 1e9 / ns,
		})
	}

	// addAllocs also records allocations per op (taken from the pass that
	// set the minimum elapsed time; allocation counts are deterministic
	// for these single-goroutine workloads).
	addAllocs := func(name string, ops int, measure func() (time.Duration, float64)) {
		elapsed, allocs := measure()
		for i := 1; i < 5; i++ {
			if again, a := measure(); again < elapsed {
				elapsed, allocs = again, a
			}
		}
		ns := float64(elapsed.Nanoseconds()) / float64(ops)
		rep.Results = append(rep.Results, Measurement{
			Name: name, Ops: ops, NsPerOp: ns, OpsPerSec: 1e9 / ns, AllocsPerOp: allocs,
		})
	}

	// Sequential E7 rows.
	keys := scaleInt(10_000, scale)
	ops := scaleInt(100_000, scale)
	add("e7/put-seq", ops, func() time.Duration {
		_, elapsed := mutateStore(keys, ops, nil)
		return elapsed
	})
	add("e7/put-batch", ops, func() time.Duration {
		return putBatchThroughput(keys, ops)
	})
	reads := scaleInt(100_000, scale)
	e7Store := func() *state.Store {
		st, _ := mutateStore(keys, ops, nil)
		correctRetroactively(st, keys, keys/20+1)
		return st
	}
	add("e7/find-current", reads, func() time.Duration { return findThroughput(e7Store(), keys, reads, false) })
	add("e7/find-systime", reads, func() time.Duration { return findThroughput(e7Store(), keys, reads, true) })

	// Parallel contention rows: sharded vs single-lock.
	parOps := scaleInt(200_000, scale)
	for _, cfg := range []struct {
		name   string
		shards int
	}{{"sharded", 0}, {"single-lock", 1}} {
		shards := cfg.shards
		add("e7/find-par8/"+cfg.name, parOps, func() time.Duration {
			pst := state.NewStoreWithShards(shards)
			seedCurrentValues(pst, keys)
			return parallelFinds(pst, keys, parOps, regressionWorkers)
		})
		add("e7/put-par8/"+cfg.name, parOps, func() time.Duration {
			return parallelPuts(state.NewStoreWithShards(shards), parOps, regressionWorkers)
		})
	}

	// End-to-end ingestion rows: the whole Figure-1 pipeline. The serial
	// row carries allocs/op — the hardware-independent hot-path gauge.
	ingestOps := scaleInt(400_000, scale)
	addAllocs("e7/ingest-serial", ingestOps, func() (time.Duration, float64) {
		return ingestThroughput(1, ingestOps)
	})
	for _, workers := range []int{4, 8} {
		workers := workers
		add(fmt.Sprintf("e7/ingest-par%d", workers), ingestOps, func() time.Duration {
			elapsed, _ := ingestThroughput(workers, ingestOps)
			return elapsed
		})
	}

	// Fan-out overhead rows: the serial ingest leg with 1k subscription
	// clients attached (one permanently stalled). The benchrunner gate
	// bounds ns/op at 1.1x e7/ingest-serial on >= 4-CPU machines; the
	// latency row reports the broker's mean per-batch broadcast time
	// (NsPerOp is that mean, Ops the batch count of the fastest pass).
	fanoutSubs := scaleInt(1_000, scale)
	var fanElapsed, fanMean time.Duration
	fanBatches := 0
	for i := 0; i < 5; i++ {
		elapsed, mean, batches := fanoutRun(fanoutSubs, ingestOps)
		if i == 0 || elapsed < fanElapsed {
			fanElapsed, fanMean, fanBatches = elapsed, mean, batches
		}
	}
	fanNs := float64(fanElapsed.Nanoseconds()) / float64(ingestOps)
	rep.Results = append(rep.Results, Measurement{
		Name: "e7/fanout-1k-subscribers", Ops: ingestOps, NsPerOp: fanNs, OpsPerSec: 1e9 / fanNs,
	})
	if fanBatches > 0 && fanMean > 0 {
		meanNs := float64(fanMean.Nanoseconds())
		rep.Results = append(rep.Results, Measurement{
			Name: "e7/fanout-broadcast-latency", Ops: fanBatches,
			NsPerOp: meanNs, OpsPerSec: 1e9 / meanNs,
		})
	}

	// Reader-latency-under-ingest rows: wildcard scans and on-demand
	// queries racing 4 background replace-batch writers. The snapshot row
	// reads lock-free pinned cuts; the lock-all row is the pre-epoch
	// all-shard-read-lock gather kept as the contention baseline. The
	// benchrunner gate requires snapshot >= 2x faster than lock-all on
	// machines with >= 4 CPUs (reader and writers truly parallel).
	scanKeys := scaleInt(4_096, scale)
	scans := scaleInt(600, scale)
	add("e7/scan-under-ingest/snapshot", scans, func() time.Duration {
		return scanUnderIngest(false, scanKeys, scans, underIngestWriters)
	})
	add("e7/scan-under-ingest/lock-all", scans, func() time.Duration {
		return scanUnderIngest(true, scanKeys, scans, underIngestWriters)
	})
	queries := scaleInt(300, scale)
	add("e7/query-under-ingest", queries, func() time.Duration {
		return queryUnderIngest(scanKeys, queries, underIngestWriters)
	})

	// Partitioned-execution rows (PR 7): serial vs 4-way partitioned
	// gather over one pinned snapshot, then an identical selective range
	// query executed by full scan-and-filter vs the prepared plan whose
	// pushed bounds engage the value-envelope index. The benchrunner
	// gates require par4 >= 2x serial and indexed >= 1.5x full-scan on
	// >= 4-CPU machines (the scan ratio needs real parallelism; the
	// index ratio holds anywhere but is gated alongside for one
	// same-run comparison). The prepared-exec row carries allocs/op —
	// if Exec ever re-parses or re-plans, that count jumps.
	quietScans := scaleInt(2_000, scale)
	add("e7/scan-serial", quietScans, func() time.Duration {
		return scanPartitioned(1, scanKeys, quietScans)
	})
	add("e7/scan-par4", quietScans, func() time.Duration {
		return scanPartitioned(4, scanKeys, quietScans)
	})
	selective := scaleInt(2_000, scale)
	add("e7/query-fullscan", selective, func() time.Duration {
		return queryPrepared(false, scanKeys, selective)
	})
	add("e7/query-indexed", selective, func() time.Duration {
		return queryPrepared(true, scanKeys, selective)
	})
	preparedExecs := scaleInt(20_000, scale)
	addAllocs("e7/query-prepared-exec", preparedExecs, func() (time.Duration, float64) {
		return preparedExecCost(scanKeys, preparedExecs)
	})

	// Cold-start recovery rows: full-WAL replay vs segment directory
	// (manifest + frame bulk-load + WAL-tail replay), and the parallel
	// vs serial frame-load pair. The benchrunner gates require segments
	// >= 3x faster than the WAL and (on >= 4 CPUs) the parallel load
	// >= 2x faster than serial in the same run.
	addRecoveryRows(add, scale)

	// Out-of-core rows: the same selective query resident vs fully
	// evicted (gate: cold <= 3x resident — per-segment envelope pruning
	// must keep a selective cold scan from decaying to a full directory
	// decode), plus the per-lineage eviction-sweep cost.
	addOutOfCoreRows(add, scale)

	// Segmented-WAL truncation rows: whole-file drops must cost the
	// same per call whether the chain holds 1x or 8x the records
	// (gate: tail-8x <= 3x tail-1x). Compaction-reclaim rows: a merged
	// directory's restart load (frame slots) must be at most half the
	// unmerged one's.
	addWALTruncateRows(add, scale)
	addCompactReclaimRows(rep, scale)

	// Fault-layer cost rows: the empty FaultFS wrap vs the vfs.OS
	// passthrough on a flush-heavy workload (gate: <= 1.05x), and
	// degraded-mode ingest vs healthy durable ingest (gate: <= 1.1x).
	addFaultRows(add, scale)

	// Bitemporal read rows over a corrected history.
	bKeys := scaleInt(1_000, scale)
	bStore := func() *state.Store {
		return buildCorrectedStore(bKeys, 16, scaleInt(2_000, scale))
	}
	bReads := scaleInt(100_000, scale)
	midValid := temporal.Instant(8 * 100)
	midTx := temporal.Instant(16 * 100)
	add("bitemporal/find-current", bReads, func() time.Duration {
		return timeReads(bStore(), bKeys, bReads, nil)
	})
	add("bitemporal/find-asof-valid", bReads, func() time.Duration {
		return timeReads(bStore(), bKeys, bReads, []state.ReadOpt{state.AsOfValidTime(midValid)})
	})
	add("bitemporal/find-systime", bReads, func() time.Duration {
		return timeReads(bStore(), bKeys, bReads,
			[]state.ReadOpt{state.AsOfValidTime(midValid), state.AsOfTransactionTime(midTx)})
	})
	histReads := scaleInt(20_000, scale)
	add("bitemporal/history", histReads, func() time.Duration {
		return timeHistories(bStore(), bKeys, histReads)
	})
	return rep
}

// keyNames pre-renders key names so hot loops measure store cost, not
// fmt.Sprintf.
func keyNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("k%06d", i)
	}
	return out
}

// seedCurrentValues gives every key one open version.
func seedCurrentValues(st *state.Store, keys int) {
	db := st.DB()
	for i, name := range keyNames(keys) {
		if err := db.Put(name, "value", element.Int(int64(i)),
			state.WithValidTime(temporal.Instant(i)),
			state.WithTransactionTime(temporal.Instant(i))); err != nil {
			panic(err)
		}
	}
}

// timeReads measures Finds with a fixed option set.
func timeReads(st *state.Store, keys, reads int, opts []state.ReadOpt) time.Duration {
	db := st.DB()
	names := keyNames(keys)
	start := time.Now()
	for i := 0; i < reads; i++ {
		db.Find(names[i%keys], "v", opts...)
	}
	return time.Since(start)
}

// timeHistories measures History scans.
func timeHistories(st *state.Store, keys, reads int) time.Duration {
	db := st.DB()
	names := keyNames(keys)
	start := time.Now()
	for i := 0; i < reads; i++ {
		db.History(names[i%keys], "v")
	}
	return time.Since(start)
}

// parallelFinds runs totalOps point reads split across workers goroutines
// and returns the wall-clock duration — the contention-sensitive measure
// the sharding refactor targets.
func parallelFinds(st *state.Store, keys, totalOps, workers int) time.Duration {
	db := st.DB()
	names := keyNames(keys)
	per := totalOps / workers
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Offset stride per worker so goroutines walk different keys.
			i := w * 977
			for n := 0; n < per; n++ {
				db.Find(names[i%keys], "value")
				i += 31
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

// parallelPuts runs totalOps default-clock Puts split across workers
// goroutines with disjoint per-worker key ranges, measuring write-path
// contention: shard locks plus the shared transaction clock.
func parallelPuts(st *state.Store, totalOps, workers int) time.Duration {
	db := st.DB()
	per := totalOps / workers
	const keysPerWorker = 512
	names := make([][]string, workers)
	for w := range names {
		names[w] = make([]string, keysPerWorker)
		for k := range names[w] {
			names[w][k] = fmt.Sprintf("w%02d-k%04d", w, k)
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < per; n++ {
				if err := db.Put(names[w][n%keysPerWorker], "value", element.Int(int64(n))); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

// buildCorrectedStore builds a store with versioned history plus a layer
// of retroactive corrections, so reads pay the realistic cost of the
// transaction-time dimension. It mirrors the bitemporal benchmark store
// of bitemporal_bench_test.go in non-test code for the regression suite.
func buildCorrectedStore(keys, versions, corrections int) *state.Store {
	st := state.NewStore()
	db := st.DB()
	names := keyNames(keys)
	for k := 0; k < keys; k++ {
		for v := 0; v < versions; v++ {
			at := temporal.Instant(v * 100)
			if err := db.Put(names[k], "v", element.Int(int64(v)),
				state.WithValidTime(at), state.WithTransactionTime(at)); err != nil {
				panic(err)
			}
		}
	}
	txBase := temporal.Instant(versions * 100)
	for c := 0; c < corrections; c++ {
		from := temporal.Instant((c % versions) * 100)
		if err := db.Put(names[c%keys], "v", element.Int(int64(-c)),
			state.WithValidTime(from), state.WithEndValidTime(from+50),
			state.WithTransactionTime(txBase+temporal.Instant(c))); err != nil {
			panic(err)
		}
	}
	return st
}
