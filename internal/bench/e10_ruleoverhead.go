package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/element"
	"repro/internal/metrics"
	"repro/internal/rules"
	"repro/internal/state"
	"repro/internal/stream"
	"repro/internal/workload"
)

// E10RuleOverhead is the ablation for the "different abstractions"
// benefit of §3.2: separating state management into a declarative rule
// language must not price the abstraction out of the hot path. We apply
// the same state transition (the security REPLACE rule) four ways —
// direct store API, compiled rule set, rule set with a WHERE filter, and
// the full engine — and compare per-event cost. The gap between rows is
// the interpretation overhead of each layer.
func E10RuleOverhead(scale float64) *metrics.Table {
	cfg := workload.DefaultBuilding()
	cfg.Visitors = scaleInt(cfg.Visitors*3, scale)
	els, _ := workload.Building(cfg)
	entries := make([]*element.Element, 0, len(els))
	for _, el := range els {
		if el.Stream == "RoomEntry" {
			entries = append(entries, el)
		}
	}

	tab := metrics.NewTable("E10 — rule-engine overhead ablation (§3.2)",
		"layer", "events", "wall", "ns/event", "events/s")
	addRow := func(layer string, wall time.Duration) {
		n := len(entries)
		tab.AddRow(layer, n, wall.Round(time.Microsecond).String(),
			fmtDur(float64(wall.Nanoseconds())/float64(n)),
			float64(n)/wall.Seconds())
	}

	// Warm-up pass so the first measured layer doesn't pay cold-cache
	// costs the later layers avoid.
	warm := state.NewStore()
	for _, el := range entries {
		visitor, _ := el.Get("visitor")
		room, _ := el.Get("room")
		_ = warm.Put(visitor.MustString(), "position", room, el.Timestamp)
	}

	// Layer 0: hand-coded store access (the floor).
	st := state.NewStore()
	start := time.Now()
	for _, el := range entries {
		visitor, _ := el.Get("visitor")
		room, _ := el.Get("room")
		if err := st.Put(visitor.MustString(), "position", room, el.Timestamp); err != nil {
			panic(err)
		}
	}
	addRow("direct-store", time.Since(start))

	// Layer 1: compiled rule set.
	set, err := rules.ParseSet(`
RULE position ON RoomEntry AS r THEN REPLACE position(r.visitor) = r.room`)
	if err != nil {
		panic(err)
	}
	st = state.NewStore()
	start = time.Now()
	for _, el := range entries {
		if _, err := set.Apply(el, st); err != nil {
			panic(err)
		}
	}
	addRow("rule-set", time.Since(start))

	// Layer 2: rule set with a WHERE filter (expression evaluation on
	// every event).
	set, err = rules.ParseSet(`
RULE position ON RoomEntry AS r WHERE r.room != 'nowhere'
THEN REPLACE position(r.visitor) = r.room`)
	if err != nil {
		panic(err)
	}
	st = state.NewStore()
	start = time.Now()
	for _, el := range entries {
		if _, err := set.Apply(el, st); err != nil {
			panic(err)
		}
	}
	addRow("rule-set+where", time.Since(start))

	// Layer 3: full engine (watermarks, policy dispatch, processors off).
	e := core.New(core.StateFirst)
	if err := e.DeployRules(`
RULE position ON RoomEntry AS r THEN REPLACE position(r.visitor) = r.room`); err != nil {
		panic(err)
	}
	msgs := stream.FromElements(entries)
	start = time.Now()
	if err := e.Run(msgs); err != nil {
		panic(err)
	}
	addRow("engine", time.Since(start))

	return tab
}
