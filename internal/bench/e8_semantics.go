package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/workload"
)

// E8Semantics is the ablation for the paper's hardest open question
// (§3.3): "how to define the overall semantics of the system, taking into
// account the possible interactions between the state ... and the stream
// processing rules". The same security workload runs under the three
// interaction policies; the divergence in gated output quantifies how
// much the choice matters, and wall time shows its cost is negligible.
//
// The pipeline gates RoomEntry events on the visitor's own position state
// ("already tracked"), which a same-tick update satisfies only under
// StateFirst.
func E8Semantics(scale float64) *metrics.Table {
	cfg := workload.DefaultBuilding()
	cfg.Visitors = scaleInt(cfg.Visitors, scale)
	els, _ := workload.Building(cfg)

	tab := metrics.NewTable("E8 — interaction-semantics ablation (§3.3)",
		"policy", "events", "gate-passed", "passed%", "wall", "events/s")

	for _, policy := range []core.Policy{core.StateFirst, core.StreamFirst, core.Snapshot} {
		e := core.New(policy)
		if err := e.DeployRules(`
RULE position ON RoomEntry AS r THEN REPLACE position(r.visitor) = r.room
RULE exit ON BuildingExit AS r THEN RETRACT position(r.visitor)`); err != nil {
			panic(err)
		}
		gate, err := lang.ParseExpr("EXISTS position(e.visitor)")
		if err != nil {
			panic(err)
		}
		if err := e.DeployProcessor(&core.Processor{
			Name: "tracked", Source: "RoomEntry", Gate: gate,
		}); err != nil {
			panic(err)
		}
		msgs := stream.WithPeriodicWatermarks(els, temporal.Instant(time.Minute))
		start := time.Now()
		if err := e.Run(msgs); err != nil {
			panic(err)
		}
		wall := time.Since(start)
		st := e.Stats()[0]
		tab.AddRow(policy.String(), st.Seen, st.Processed,
			pct(int(st.Processed), int(st.Seen)),
			wall.Round(time.Microsecond).String(),
			float64(len(els))/wall.Seconds())
	}
	return tab
}
