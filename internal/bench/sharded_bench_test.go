package bench

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
)

// Sharded-store contention benchmarks: each benchmark runs the identical
// workload against the default hash-partitioned store and a 1-shard
// (single global RWMutex) baseline — the seed store's layout. Run with
// -cpu 8 for the 8-goroutine numbers recorded in BENCH_PR2.json:
//
//	go test ./internal/bench/ -run NONE -bench 'Sharded.*Parallel' -cpu 8
//
// b.RunParallel spawns GOMAXPROCS goroutines; on multi-core machines the
// sharded variant scales with cores while the single lock serializes
// (writes) or ping-pongs its reader count cache line (reads). On a
// single-CPU machine the two variants time-share one core and the ratio
// collapses toward 1x — the speedup needs real parallelism to exist.

// shardedBenchVariants pairs the store-under-test with its baseline.
var shardedBenchVariants = []struct {
	name   string
	shards int
}{
	{"sharded", 0},     // GOMAXPROCS-scaled default
	{"single-lock", 1}, // the pre-sharding layout
}

// BenchmarkShardedFindParallel measures concurrent current-belief point
// reads: every goroutine walks its own stride over a shared key
// population.
func BenchmarkShardedFindParallel(b *testing.B) {
	const keys = 8192
	for _, tc := range shardedBenchVariants {
		b.Run(tc.name, func(b *testing.B) {
			st := state.NewStoreWithShards(tc.shards)
			db := st.DB()
			names := make([]string, keys)
			for i := range names {
				names[i] = fmt.Sprintf("k%06d", i)
				if err := db.Put(names[i], "value", element.Int(int64(i)),
					state.WithValidTime(temporal.Instant(i)),
					state.WithTransactionTime(temporal.Instant(i))); err != nil {
					b.Fatal(err)
				}
			}
			var gid atomic.Int64
			b.ResetTimer()
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := int(gid.Add(1)) * 977
				for pb.Next() {
					if _, ok := db.Find(names[i%keys], "value"); !ok {
						b.Fatal("missing version")
					}
					i += 31
				}
			})
		})
	}
}

// BenchmarkShardedPutParallel measures concurrent default-clock writes:
// goroutines own disjoint key ranges, so all contention comes from the
// locking layout (one mutex vs shard stripes) and the shared transaction
// clock.
func BenchmarkShardedPutParallel(b *testing.B) {
	const keysPerWorker = 512
	for _, tc := range shardedBenchVariants {
		b.Run(tc.name, func(b *testing.B) {
			st := state.NewStoreWithShards(tc.shards)
			db := st.DB()
			var gid atomic.Int64
			b.ResetTimer()
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				w := gid.Add(1)
				names := make([]string, keysPerWorker)
				for k := range names {
					names[k] = fmt.Sprintf("w%03d-k%04d", w, k)
				}
				for n := 0; pb.Next(); n++ {
					if err := db.Put(names[n%keysPerWorker], "value", element.Int(int64(n))); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
