package bench

import (
	"time"

	"repro/internal/element"
	"repro/internal/metrics"
	"repro/internal/temporal"
	"repro/internal/window"
	"repro/internal/workload"
)

// E9WindowBaselines surveys the windowing landscape the paper cites (§2,
// §4) on the click-stream workload: fixed count and time windows (CQL
// [3]), landmark windows, session windows (Dataflow [1]), predicate
// windows (Ghanem et al. [8]), and delta frames (Grossniklaus et al.
// [9]). Reported per mechanism: raw throughput through the windower, the
// number of emitted panes, and peak buffered elements. Together with
// E1/E2 this locates explicit state in the design space: content-driven
// mechanisms approach its scoping fidelity, but none provides queryable,
// temporally annotated state.
func E9WindowBaselines(scale float64) *metrics.Table {
	cfg := workload.DefaultClickstream()
	cfg.Users = scaleInt(cfg.Users, scale)
	els, _ := workload.Clickstream(cfg)
	userOf := func(e *element.Element) string { return e.MustGet("visitor").MustString() }

	tab := metrics.NewTable("E9 — windowing mechanism landscape (§2, §4)",
		"mechanism", "panes", "peak-buffered", "events/s")

	mechanisms := []struct {
		name string
		w    window.Windower
	}{
		{"tumbling-count-100", window.NewTumblingCount(100)},
		{"sliding-count-100/10", window.NewSlidingCount(100, 10)},
		{"tumbling-time-5m", window.NewTumblingTime(temporal.Instant(5 * time.Minute))},
		{"sliding-time-10m/1m", window.NewSlidingTime(
			temporal.Instant(10*time.Minute), temporal.Instant(time.Minute))},
		{"landmark", window.NewLandmark(0)},
		{"session-30m-gap", window.NewSession(temporal.Instant(30*time.Minute), userOf)},
		{"predicate-enter-leave", window.NewPredicate(userOf,
			func(e *element.Element) bool { return e.Stream == "Enter" },
			func(e *element.Element) bool { return e.Stream == "Leave" })},
	}
	for _, m := range mechanisms {
		panes, peak, wall := driveWindower(m.w, els)
		tab.AddRow(m.name, panes, peak, float64(len(els))/wall.Seconds())
	}

	// Delta frames need a numeric field; frame over purchase amounts.
	var purchases []*element.Element
	for _, el := range els {
		if el.Stream == "Purchase" {
			purchases = append(purchases, el)
		}
	}
	if len(purchases) > 0 {
		df := window.NewDeltaFrame("amount", 25)
		panes, peak, wall := driveWindower(df, purchases)
		panes += len(df.Flush(purchases[len(purchases)-1].Timestamp + 1))
		tab.AddRow("delta-frame-25", panes, peak, float64(len(purchases))/wall.Seconds())
	}
	return tab
}

func driveWindower(w window.Windower, els []*element.Element) (panes, peak int, wall time.Duration) {
	start := time.Now()
	for _, el := range els {
		panes += len(w.Observe(el))
		panes += len(w.AdvanceTo(el.Timestamp))
		if p := w.Pending(); p > peak {
			peak = p
		}
	}
	panes += len(w.AdvanceTo(els[len(els)-1].Timestamp + temporal.Instant(100*time.Hour)))
	return panes, peak, time.Since(start)
}
