package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/element"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/temporal"
	"repro/internal/window"
	"repro/internal/workload"
)

// E5StateGating measures the paper's efficiency claim (§1, §5): explicit
// state "can simplify the processing effort by limiting the amount of
// streaming data that needs to be analyzed depending on the specific
// state of the system". We mark a fraction of users as monitored in the
// state, then run an aggregation pipeline twice: ungated (every click is
// windowed and aggregated) and gated (a state condition drops clicks of
// unmonitored users before the window).
//
// Reported per monitored fraction: elements reaching the operator, total
// wall time, and the throughput ratio gated/ungated.
func E5StateGating(scale float64) *metrics.Table {
	cfg := workload.DefaultClickstream()
	cfg.Users = scaleInt(100, scale)
	cfg.SessionsPerUser = 6
	els, _ := workload.Clickstream(cfg)

	tab := metrics.NewTable("E5 — state-gated processing (§1, §5)",
		"monitored%", "mode", "seen", "processed", "wall", "events/s")

	for _, fraction := range []int{1, 10, 50, 100} {
		for _, gated := range []bool{false, true} {
			seen, processed, wall := runGating(els, cfg.Users, fraction, gated)
			mode := "ungated"
			if gated {
				mode = "gated"
			}
			rate := float64(len(els)) / wall.Seconds()
			tab.AddRow(fraction, mode, seen, processed, wall.Round(time.Microsecond).String(), rate)
		}
	}
	return tab
}

func runGating(els []*element.Element, users, fraction int, gated bool) (seen, processed uint64, wall time.Duration) {
	e := core.New(core.StateFirst)
	// Seed monitored users as background state (fraction% of users).
	monitored := users * fraction / 100
	for i := 0; i < monitored; i++ {
		e.Store().Put(fmt.Sprintf("user%04d", i), "monitored", element.Bool(true), 0)
	}
	// A deliberately heavy operator: per-user click counts over sliding
	// windows — the cost the gate is supposed to avoid.
	agg := cql.NewQuery("Counts", "Click",
		window.NewSlidingTime(temporal.Instant(10*time.Minute), temporal.Instant(time.Minute)),
		false, cql.IStream,
		cql.NewAggregate([]string{"visitor"}, cql.AggSpec{Func: cql.Count, As: "n"}),
	)
	p := &core.Processor{Name: "counts", Source: "Click", Op: agg}
	if gated {
		g, err := lang.ParseExpr("EXISTS monitored(e.visitor)")
		if err != nil {
			panic(err)
		}
		p.Gate = g
	}
	if err := e.DeployProcessor(p); err != nil {
		panic(err)
	}
	msgs := stream.WithPeriodicWatermarks(els, temporal.Instant(time.Minute))
	start := time.Now()
	if err := e.Run(msgs); err != nil {
		panic(err)
	}
	wall = time.Since(start)
	st := e.Stats()[0]
	return st.Seen, st.Processed, wall
}
