package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/query"
	"repro/internal/state"
	"repro/internal/temporal"
)

// Partitioned-query rows: the PR-7 execution layer. scanPartitioned
// contrasts the serial snapshot gather with the shard-partitioned
// parallel gather on an identical pinned cut; queryPrepared contrasts a
// full-scan-and-filter query against the same query planned with its
// range predicate pushed into the gather, where the attribute-level
// value-envelope index skips every lineage whose values cannot match.

// partitionScanStore seeds the store the partition rows read, reusing
// the under-ingest seeding (one open version per key, values 0..keys-1).
func partitionScanStore(keys int) *state.Store {
	return seededScanStore(keys)
}

// scanPartitioned measures wildcard attribute scans over one pinned
// snapshot: par <= 1 takes the serial List gather, higher values the
// partitioned gather with that worker count.
func scanPartitioned(par, keys, scans int) time.Duration {
	st := partitionScanStore(keys)
	snap := st.Snapshot()
	start := time.Now()
	for i := 0; i < scans; i++ {
		if par <= 1 {
			snap.List(state.WithAttribute("value"))
		} else {
			snap.ScanShards(par, state.WithAttribute("value"))
		}
	}
	return time.Since(start)
}

// queryPrepared measures a selective range query (value > keys-10, ~10
// matching lineages) per execution mode: indexed=false runs the classic
// executor — full scan, then filter — while indexed=true runs the
// prepared plan, whose pushed bounds let the value-envelope index prune
// non-candidate lineages before any version is gathered. Parallelism is
// pinned to 1 so the rows isolate index pruning from partitioning.
func queryPrepared(indexed bool, keys, queries int) time.Duration {
	st := partitionScanStore(keys)
	src := fmt.Sprintf("SELECT entity, value FROM value WHERE value > %d", keys-10)
	p, err := query.Prepare(src)
	if err != nil {
		panic(err)
	}
	now := temporal.Instant(keys + 1)
	snap := st.Snapshot()
	start := time.Now()
	for i := 0; i < queries; i++ {
		if indexed {
			if _, err := p.Exec(query.ExecEnv{Store: snap, Now: now, Parallelism: 1}); err != nil {
				panic(err)
			}
		} else {
			ex := &query.Executor{Store: snap, Now: now}
			if _, err := ex.Run(src); err != nil {
				panic(err)
			}
		}
	}
	return time.Since(start)
}

// preparedExecCost measures one prepared execution end to end (ns and
// heap allocations per Exec) over a small pinned store — the
// zero-parse/zero-plan claim of the prepared API, in row form.
func preparedExecCost(keys, execs int) (time.Duration, float64) {
	st := partitionScanStore(keys)
	p, err := query.Prepare(fmt.Sprintf(
		"SELECT entity, value FROM value WHERE value > %d", keys-10))
	if err != nil {
		panic(err)
	}
	env := query.ExecEnv{Store: st.Snapshot(), Now: temporal.Instant(keys + 1), Parallelism: 1}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < execs; i++ {
		if _, err := p.Exec(env); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return elapsed, float64(ms1.Mallocs-ms0.Mallocs) / float64(execs)
}
