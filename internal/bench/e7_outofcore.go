package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/element"
	"repro/internal/query"
	"repro/internal/state"
	"repro/internal/state/segment"
	"repro/internal/temporal"
)

// Out-of-core rows: the larger-than-RAM execution seam. scan-resident
// and scan-cold run the same selective prepared query over the same
// durable directory — once with every lineage in RAM, once with every
// lineage evicted, so the scan's candidates arrive through the cold
// union and per-segment envelope pruning decides how many frames are
// actually read. evict-reclaim prices the eviction sweep itself. The
// benchrunner gate bounds cold at 3x resident: envelope pruning has to
// keep a selective cold scan in the same class as a resident one
// instead of decaying to a full directory decode.

// outOfCoreSegments is the flush-segment count of the bench directory.
// Keys are written in contiguous value ranges, one flush per range, so
// each segment's value envelope covers a disjoint slice and a
// top-of-range predicate prunes all but the last segment without a
// pread.
const outOfCoreSegments = 64

// buildOutOfCoreStore writes keys 0..keys-1 (value = key index) across
// outOfCoreSegments flush segments in dir.
func buildOutOfCoreStore(dir string, keys int) *segment.Store {
	d, err := segment.Open(dir)
	if err != nil {
		panic(err)
	}
	db := d.Mem().DB()
	per := keys / outOfCoreSegments
	if per < 1 {
		per = 1
	}
	for idx := 0; idx < keys; idx++ {
		if err := db.Put(fmt.Sprintf("k%06d", idx), "value", element.Int(int64(idx)),
			state.WithValidTime(temporal.Instant(idx+1)),
			state.WithTransactionTime(temporal.Instant(idx+1))); err != nil {
			panic(err)
		}
		if (idx+1)%per == 0 || idx == keys-1 {
			if err := d.Flush(); err != nil {
				panic(err)
			}
		}
	}
	return d
}

// scanOutOfCore measures the selective prepared query (value > keys-10,
// ~10 matching lineages, parallelism 4) over a pinned snapshot of the
// bench directory — fully resident when evict is false, fully evicted
// when true.
func scanOutOfCore(evict bool, keys, queries int) time.Duration {
	dir, err := os.MkdirTemp("", "outofcore-bench-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	d := buildOutOfCoreStore(dir, keys)
	if evict {
		if n := d.EvictToBudget(0); n == 0 {
			panic("scan-cold evicted nothing: the row would measure the resident path")
		}
	}
	p, err := query.Prepare(fmt.Sprintf("SELECT entity, value FROM value WHERE value > %d", keys-10))
	if err != nil {
		panic(err)
	}
	env := query.ExecEnv{Store: d.Mem().Snapshot(), Now: temporal.Instant(keys + 1), Parallelism: 4}
	start := time.Now()
	for i := 0; i < queries; i++ {
		if _, err := p.Exec(env); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	d.Abandon()
	return elapsed
}

// evictReclaim measures one full eviction sweep: every fully-durable
// lineage leaves RAM. Ops is the key count, so NsPerOp is the per-
// lineage reclaim cost.
func evictReclaim(keys int) time.Duration {
	dir, err := os.MkdirTemp("", "outofcore-bench-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	d := buildOutOfCoreStore(dir, keys)
	start := time.Now()
	n := d.EvictToBudget(0)
	elapsed := time.Since(start)
	if n == 0 {
		panic("evict-reclaim evicted nothing")
	}
	d.Abandon()
	return elapsed
}

// addOutOfCoreRows appends the out-of-core rows through add.
func addOutOfCoreRows(add func(name string, ops int, measure func() time.Duration), scale float64) {
	keys := scaleInt(8_192, scale)
	queries := scaleInt(300, scale)
	add("e7/scan-resident", queries, func() time.Duration { return scanOutOfCore(false, keys, queries) })
	add("e7/scan-cold", queries, func() time.Duration { return scanOutOfCore(true, keys, queries) })
	add("e7/evict-reclaim", keys, func() time.Duration { return evictReclaim(keys) })
}
