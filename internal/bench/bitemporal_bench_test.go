package bench

import (
	"fmt"
	"testing"

	"repro/internal/element"
	"repro/internal/state"
	"repro/internal/temporal"
)

// buildBitemporalStore builds a store with versioned history and a layer
// of retroactive corrections, so reads pay the realistic cost of the
// transaction-time dimension (superseded records interleaved with
// believed ones).
func buildBitemporalStore(keys, versions, corrections int) *state.Store {
	st := state.NewStore()
	db := st.DB()
	for k := 0; k < keys; k++ {
		name := fmt.Sprintf("k%06d", k)
		for v := 0; v < versions; v++ {
			at := temporal.Instant(v * 100)
			if err := db.Put(name, "v", element.Int(int64(v)),
				state.WithValidTime(at), state.WithTransactionTime(at)); err != nil {
				panic(err)
			}
		}
	}
	// Retroactive corrections recorded after the whole history.
	txBase := temporal.Instant(versions * 100)
	for c := 0; c < corrections; c++ {
		name := fmt.Sprintf("k%06d", c%keys)
		from := temporal.Instant((c % versions) * 100)
		if err := db.Put(name, "v", element.Int(int64(-c)),
			state.WithValidTime(from), state.WithEndValidTime(from+50),
			state.WithTransactionTime(txBase+temporal.Instant(c))); err != nil {
			panic(err)
		}
	}
	return st
}

// BenchmarkBitemporalFind is the e7 state-store experiment's
// microbenchmark face: the per-read cost of the bitemporal dimension,
// from day one of the StateDB API. Current-belief point reads stay on
// the binary-searched live index; transaction-time-pinned reads scan the
// record history.
func BenchmarkBitemporalFind(b *testing.B) {
	const (
		keys        = 1_000
		versions    = 16
		corrections = 2_000
	)
	st := buildBitemporalStore(keys, versions, corrections)
	db := st.DB()
	midValid := temporal.Instant(versions / 2 * 100)
	midTx := temporal.Instant(versions * 100) // before any correction

	b.Run("current", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("k%06d", i%keys)
			if _, ok := db.Find(name, "v"); !ok {
				b.Fatal("missing current version")
			}
		}
	})
	b.Run("asof-valid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("k%06d", i%keys)
			if _, ok := db.Find(name, "v", state.AsOfValidTime(midValid)); !ok {
				b.Fatal("missing as-of version")
			}
		}
	})
	b.Run("asof-system-time", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("k%06d", i%keys)
			if _, ok := db.Find(name, "v",
				state.AsOfValidTime(midValid), state.AsOfTransactionTime(midTx)); !ok {
				b.Fatal("missing belief version")
			}
		}
	})
	b.Run("history", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("k%06d", i%keys)
			if got := db.History(name, "v"); len(got) == 0 {
				b.Fatal("missing history")
			}
		}
	})
}
