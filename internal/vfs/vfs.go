// Package vfs is the filesystem seam of the durability layer. Every
// os.* call made by the WAL (internal/state) and the segment store
// (internal/state/segment) goes through the FS interface, so tests can
// swap the real filesystem for a FaultFS that injects scripted failures
// — errors on the Nth matching operation, short writes, torn renames,
// lying fsyncs — and chaos suites can prove the engine degrades instead
// of corrupting state.
//
// The passthrough implementation (OS) returns *os.File handles directly
// and adds no buffering, locking, or copying, so the production path
// costs nothing beyond an interface call (gated ≤5% by the
// e7/flush-vfs-overhead benchmark).
//
// The package also defines the durable-path error taxonomy: injected or
// real I/O errors classify as transient (worth retrying with backoff)
// or permanent (enter degraded mode) via ErrTransient / ErrPermanent
// and the IsTransient predicate.
package vfs

import (
	"io"
	"os"
)

// File is the handle surface the durability layer needs: sequential
// writes (WAL, segment builder), positional reads (frame fetch), fsync,
// and enough metadata for size checks and advisory locks. *os.File
// satisfies it directly.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Stat returns file metadata (used for size/torn-tail checks).
	Stat() (os.FileInfo, error)
	// Name returns the path the file was opened with.
	Name() string
	// Fd returns the underlying descriptor (used for flock).
	Fd() uintptr
}

// FS abstracts the filesystem operations of the durability layer.
// Implementations: OS (passthrough) and *FaultFS (scripted injection).
type FS interface {
	// Create truncates or creates the named file for writing.
	Create(path string) (File, error)
	// Open opens the named file for reading.
	Open(path string) (File, error)
	// OpenFile is the generalized open (used for lock files).
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove unlinks the named file.
	Remove(path string) error
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists the named directory.
	ReadDir(path string) ([]os.DirEntry, error)
	// ReadFile reads the whole named file.
	ReadFile(path string) ([]byte, error)
	// SyncDir fsyncs the directory entry metadata (rename durability).
	SyncDir(dir string) error
}

// OS is the passthrough FS over the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(path string) (File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
