package vfs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ErrInjected is the default error a FaultFS rule injects. It carries no
// taxonomy marker, so IsTransient reports false — wrap it with Transient
// or Permanent in a Rule to script the other branch.
var ErrInjected = errors.New("injected fault")

// Op names one filesystem operation kind for fault-rule matching.
type Op string

// The operation kinds a Rule can match. OpWrite, OpReadAt, and OpSync
// fire on handles returned by a faulty Create/Open; the rest fire on
// the FS-level call itself.
const (
	OpCreate   Op = "create"
	OpOpen     Op = "open"
	OpOpenFile Op = "openfile"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpMkdirAll Op = "mkdirall"
	OpReadDir  Op = "readdir"
	OpReadFile Op = "readfile"
	OpSyncDir  Op = "syncdir"
	OpWrite    Op = "write"
	OpReadAt   Op = "readat"
	OpSync     Op = "sync"
)

// Rule scripts one fault: which operations it matches and what happens
// when it fires. A rule matches an operation when Op and Path both
// match (empty = wildcard; Path is a filepath.Match glob against the
// base name). Each rule keeps its own match counter: it fires on
// matches After < n ≤ After+Count (Count 0 = every match past After).
type Rule struct {
	// Op restricts the rule to one operation kind ("" = any).
	Op Op
	// Path is a glob matched against the file's base name ("" = any).
	// For renames it is matched against both the old and new name.
	Path string
	// After skips the first After matching operations.
	After int
	// Count bounds how many times the rule fires (0 = unlimited).
	Count int
	// Err is the injected error; nil injects ErrInjected. Wrap with
	// Transient or Permanent to pick the taxonomy branch.
	Err error
	// ShortWrite makes a firing OpWrite persist only half the buffer
	// before returning the error — a torn append.
	ShortWrite bool
	// TornRename performs the rename and then reports the error — the
	// ambiguous-outcome case callers must survive either way.
	TornRename bool
	// SyncLie makes a firing OpSync/OpSyncDir report success without
	// syncing — the lying-fsync drive. LiedSyncs counts occurrences.
	SyncLie bool
}

// FaultFS wraps an inner FS and injects scripted faults. Safe for
// concurrent use; rules fire deterministically in the order operations
// reach the seam.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	rules    []*ruleState
	ops      int
	injected int
	lied     int
}

type ruleState struct {
	Rule
	matched int
}

// NewFaultFS wraps inner (usually OS) with an empty fault script.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner}
}

// AddRule appends one fault rule to the script.
func (f *FaultFS) AddRule(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &ruleState{Rule: r})
}

// Reset clears all rules and their counters; injection statistics are
// kept.
func (f *FaultFS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Injected reports how many operations have had a fault injected.
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// LiedSyncs reports how many fsyncs were skipped by SyncLie rules.
func (f *FaultFS) LiedSyncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lied
}

// Ops reports how many operations have passed through the seam.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// hit records one operation and returns the first firing rule, if any.
func (f *FaultFS) hit(op Op, paths ...string) (Rule, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	for _, rs := range f.rules {
		if rs.Op != "" && rs.Op != op {
			continue
		}
		if rs.Path != "" && !matchAny(rs.Path, paths) {
			continue
		}
		rs.matched++
		if rs.matched <= rs.After {
			continue
		}
		if rs.Count > 0 && rs.matched > rs.After+rs.Count {
			continue
		}
		f.injected++
		if rs.SyncLie {
			f.lied++
		}
		return rs.Rule, true
	}
	return Rule{}, false
}

func matchAny(glob string, paths []string) bool {
	for _, p := range paths {
		if ok, _ := filepath.Match(glob, filepath.Base(p)); ok {
			return true
		}
	}
	return false
}

// inject builds the error a firing rule reports.
func inject(r Rule, op Op, path string) error {
	cause := r.Err
	if cause == nil {
		cause = ErrInjected
	}
	return fmt.Errorf("fault on %s %s: %w", op, filepath.Base(path), cause)
}

// Create implements FS, injecting OpCreate faults.
func (f *FaultFS) Create(path string) (File, error) {
	if r, ok := f.hit(OpCreate, path); ok {
		return nil, inject(r, OpCreate, path)
	}
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f, path: path}, nil
}

// Open implements FS, injecting OpOpen faults.
func (f *FaultFS) Open(path string) (File, error) {
	if r, ok := f.hit(OpOpen, path); ok {
		return nil, inject(r, OpOpen, path)
	}
	inner, err := f.inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f, path: path}, nil
}

// OpenFile implements FS, injecting OpOpenFile faults.
func (f *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if r, ok := f.hit(OpOpenFile, path); ok {
		return nil, inject(r, OpOpenFile, path)
	}
	inner, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f, path: path}, nil
}

// Rename implements FS. A firing TornRename rule performs the rename
// and still reports the error; otherwise the rename is suppressed.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if r, ok := f.hit(OpRename, oldpath, newpath); ok {
		if r.TornRename {
			_ = f.inner.Rename(oldpath, newpath)
		}
		return inject(r, OpRename, newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS, injecting OpRemove faults.
func (f *FaultFS) Remove(path string) error {
	if r, ok := f.hit(OpRemove, path); ok {
		return inject(r, OpRemove, path)
	}
	return f.inner.Remove(path)
}

// MkdirAll implements FS, injecting OpMkdirAll faults.
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if r, ok := f.hit(OpMkdirAll, path); ok {
		return inject(r, OpMkdirAll, path)
	}
	return f.inner.MkdirAll(path, perm)
}

// ReadDir implements FS, injecting OpReadDir faults.
func (f *FaultFS) ReadDir(path string) ([]os.DirEntry, error) {
	if r, ok := f.hit(OpReadDir, path); ok {
		return nil, inject(r, OpReadDir, path)
	}
	return f.inner.ReadDir(path)
}

// ReadFile implements FS, injecting OpReadFile faults.
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if r, ok := f.hit(OpReadFile, path); ok {
		return nil, inject(r, OpReadFile, path)
	}
	return f.inner.ReadFile(path)
}

// SyncDir implements FS. A firing SyncLie rule skips the directory
// fsync and reports success.
func (f *FaultFS) SyncDir(dir string) error {
	if r, ok := f.hit(OpSyncDir, dir); ok {
		if r.SyncLie {
			return nil
		}
		return inject(r, OpSyncDir, dir)
	}
	return f.inner.SyncDir(dir)
}

// faultFile intercepts the per-handle operations (write, pread, fsync)
// of a file opened through a FaultFS.
type faultFile struct {
	File
	fs   *FaultFS
	path string
}

func (f *faultFile) Write(p []byte) (int, error) {
	if r, ok := f.fs.hit(OpWrite, f.path); ok {
		if r.ShortWrite && len(p) > 1 {
			n, _ := f.File.Write(p[:len(p)/2])
			return n, inject(r, OpWrite, f.path)
		}
		return 0, inject(r, OpWrite, f.path)
	}
	return f.File.Write(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if r, ok := f.fs.hit(OpReadAt, f.path); ok {
		return 0, inject(r, OpReadAt, f.path)
	}
	return f.File.ReadAt(p, off)
}

func (f *faultFile) Sync() error {
	if r, ok := f.fs.hit(OpSync, f.path); ok {
		if r.SyncLie {
			return nil
		}
		return inject(r, OpSync, f.path)
	}
	return f.File.Sync()
}
