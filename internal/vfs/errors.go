package vfs

import (
	"errors"
	"fmt"
	"syscall"
)

// ErrTransient marks an I/O error worth retrying: the condition (disk
// momentarily full, interrupted syscall, busy device) can clear on its
// own. Test with errors.Is or IsTransient.
var ErrTransient = errors.New("transient I/O error")

// ErrPermanent marks an I/O error that retrying will not fix (media
// failure, permission revoked, filesystem gone read-only). The durable
// layer reacts by entering degraded mode rather than retrying forever.
var ErrPermanent = errors.New("permanent I/O error")

// Transient wraps err so that errors.Is(·, ErrTransient) holds, keeping
// the original error visible through Unwrap.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return taggedErr{err: err, tag: ErrTransient}
}

// Permanent wraps err so that errors.Is(·, ErrPermanent) holds, keeping
// the original error visible through Unwrap.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return taggedErr{err: err, tag: ErrPermanent}
}

// taggedErr attaches a taxonomy marker to an error without hiding it.
type taggedErr struct {
	err error
	tag error
}

func (t taggedErr) Error() string { return fmt.Sprintf("%v: %v", t.tag, t.err) }

// Unwrap exposes both the marker and the cause to errors.Is/As.
func (t taggedErr) Unwrap() []error { return []error{t.tag, t.err} }

// IsTransient classifies a durable-path error. Explicit markers win;
// otherwise a small errno heuristic catches the common self-clearing
// conditions (ENOSPC, EAGAIN, EINTR, ETIMEDOUT, EBUSY). Anything
// unrecognized is treated as permanent: degrading loudly and serving
// from RAM beats retrying an unknown failure forever.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrPermanent) {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	for _, errno := range []syscall.Errno{
		syscall.ENOSPC, syscall.EAGAIN, syscall.EINTR, syscall.ETIMEDOUT, syscall.EBUSY,
	} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}
