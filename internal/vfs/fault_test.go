package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestFaultNthOpByPattern: a rule scoped by op kind, path glob, and
// After fires on exactly the scripted occurrences and nowhere else.
func TestFaultNthOpByPattern(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OS)
	fs.AddRule(Rule{Op: OpCreate, Path: "seg-*", After: 1, Count: 1})

	if _, err := fs.Create(filepath.Join(dir, "wal.log")); err != nil {
		t.Fatalf("unmatched path should pass through: %v", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "seg-0001")); err != nil {
		t.Fatalf("first match is skipped by After: %v", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "seg-0002")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second match should fail injected, got %v", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "seg-0003")); err != nil {
		t.Fatalf("Count=1 exhausts the rule: %v", err)
	}
	if got := fs.Injected(); got != 1 {
		t.Fatalf("want 1 injection, got %d", got)
	}
}

// TestFaultShortWrite: a ShortWrite rule persists only half the buffer
// and reports the scripted error — the torn-append drive.
func TestFaultShortWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OS)
	fs.AddRule(Rule{Op: OpWrite, ShortWrite: true, Count: 1, Err: Transient(ErrInjected)})
	f, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("want transient injected error, got %v", err)
	}
	if n != 5 {
		t.Fatalf("short write should persist half, wrote %d", n)
	}
	if _, err := f.Write([]byte("rest")); err != nil {
		t.Fatalf("rule exhausted, write should pass: %v", err)
	}
	f.Close()
	b, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil || string(b) != "01234rest" {
		t.Fatalf("on-disk bytes: %q err=%v", b, err)
	}
}

// TestFaultTornRename: a TornRename rule applies the rename yet reports
// failure — callers must tolerate the ambiguous outcome.
func TestFaultTornRename(t *testing.T) {
	dir := t.TempDir()
	src, dst := filepath.Join(dir, "a.tmp"), filepath.Join(dir, "a")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultFS(OS)
	fs.AddRule(Rule{Op: OpRename, TornRename: true})
	if err := fs.Rename(src, dst); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if _, err := os.Stat(dst); err != nil {
		t.Fatalf("torn rename should have applied: %v", err)
	}
}

// TestFaultLyingSync: a SyncLie rule reports fsync success without
// syncing, and the seam counts the lie.
func TestFaultLyingSync(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(OS)
	fs.AddRule(Rule{Op: OpSync, SyncLie: true})
	f, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("lying sync must report success, got %v", err)
	}
	if got := fs.LiedSyncs(); got != 1 {
		t.Fatalf("want 1 lied sync, got %d", got)
	}
}

// TestFaultTaxonomy: explicit markers dominate, errno heuristics catch
// self-clearing conditions, and unknown errors default to permanent.
func TestFaultTaxonomy(t *testing.T) {
	if !IsTransient(Transient(errors.New("x"))) {
		t.Fatal("explicit transient not recognized")
	}
	if IsTransient(Permanent(syscall.ENOSPC)) {
		t.Fatal("explicit permanent must dominate the errno heuristic")
	}
	if !IsTransient(&os.PathError{Op: "write", Path: "f", Err: syscall.ENOSPC}) {
		t.Fatal("ENOSPC should classify transient")
	}
	if IsTransient(errors.New("unknown")) {
		t.Fatal("unknown errors default to permanent")
	}
	if IsTransient(nil) {
		t.Fatal("nil is not transient")
	}
}
