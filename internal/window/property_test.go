package window

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/element"
	"repro/internal/temporal"
)

// TestTumblingPartitionsStream: every element lands in exactly one pane,
// and pane intervals tile time without overlap.
func TestTumblingPartitionsStream(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		size := temporal.Instant(1 + rng.Intn(20))
		w := NewTumblingTime(size)
		n := 20 + rng.Intn(40)
		ts := int64(0)
		seen := map[uint64]int{}
		var panes []Pane
		for i := 0; i < n; i++ {
			ts += int64(rng.Intn(6))
			e := el(ts, "u", 1)
			e.Seq = uint64(i)
			panes = append(panes, w.Observe(e)...)
			panes = append(panes, w.AdvanceTo(e.Timestamp)...)
		}
		panes = append(panes, w.AdvanceTo(temporal.Instant(ts)+size+1)...)
		for _, p := range panes {
			if p.Window.Duration() != time.Duration(size) {
				t.Fatalf("trial %d: pane size %v != %v", trial, p.Window.Duration(), size)
			}
			for _, e := range p.Elements {
				seen[e.Seq]++
				if !p.Window.Contains(e.Timestamp) {
					t.Fatalf("trial %d: element outside pane", trial)
				}
			}
		}
		if len(seen) != n {
			t.Fatalf("trial %d: %d/%d elements emitted", trial, len(seen), n)
		}
		for s, c := range seen {
			if c != 1 {
				t.Fatalf("trial %d: element %d in %d panes", trial, s, c)
			}
		}
		// Panes tile: consecutive intervals abut.
		for i := 1; i < len(panes); i++ {
			if panes[i].Window.Start != panes[i-1].Window.End {
				t.Fatalf("trial %d: gap between panes %v and %v", trial, panes[i-1].Window, panes[i].Window)
			}
		}
	}
}

// TestSlidingCoverage: with slide dividing size evenly, every element
// appears in exactly size/slide panes once all windows containing it
// have closed.
func TestSlidingCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		slide := temporal.Instant(1 + rng.Intn(5))
		k := 1 + rng.Intn(4)
		size := slide * temporal.Instant(k)
		w := NewSlidingTime(size, slide)
		n := 20 + rng.Intn(30)
		ts := int64(0)
		counts := map[uint64]int{}
		count := func(panes []Pane) {
			for _, p := range panes {
				for _, e := range p.Elements {
					counts[e.Seq]++
				}
			}
		}
		for i := 0; i < n; i++ {
			ts += int64(rng.Intn(4))
			e := el(ts, "u", 1)
			e.Seq = uint64(i)
			count(w.Observe(e))
			count(w.AdvanceTo(e.Timestamp))
		}
		count(w.AdvanceTo(temporal.Instant(ts) + size + slide))
		if len(counts) != n {
			t.Fatalf("trial %d: %d/%d elements covered (size=%d slide=%d)", trial, len(counts), n, size, slide)
		}
		for s, c := range counts {
			if c != k {
				t.Fatalf("trial %d: element %d in %d panes, want %d (size=%d slide=%d)",
					trial, s, c, k, size, slide)
			}
		}
	}
}

// TestSessionGapInvariant: within any emitted session, consecutive
// elements of the same key are closer than the gap; across consecutive
// sessions of one key, the separation is at least the gap.
func TestSessionGapInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	gap := temporal.Instant(10)
	for trial := 0; trial < 40; trial++ {
		w := NewSession(gap, func(e *element.Element) string { return e.MustGet("user").MustString() })
		users := []string{"a", "b"}
		ts := int64(0)
		var panes []Pane
		n := 30 + rng.Intn(30)
		for i := 0; i < n; i++ {
			ts += int64(rng.Intn(15))
			e := el(ts, users[rng.Intn(2)], 1)
			e.Seq = uint64(i)
			panes = append(panes, w.Observe(e)...)
			panes = append(panes, w.AdvanceTo(e.Timestamp)...)
		}
		panes = append(panes, w.AdvanceTo(temporal.Instant(ts)+gap+1)...)
		lastEnd := map[string]temporal.Instant{}
		total := 0
		for _, p := range panes {
			for i := 1; i < len(p.Elements); i++ {
				if p.Elements[i].Timestamp-p.Elements[i-1].Timestamp >= gap {
					t.Fatalf("trial %d: intra-session gap >= %d", trial, gap)
				}
			}
			last := p.Elements[len(p.Elements)-1].Timestamp
			if prev, ok := lastEnd[p.Key]; ok {
				if p.Elements[0].Timestamp-prev < gap {
					t.Fatalf("trial %d: sessions of %q separated by < gap", trial, p.Key)
				}
			}
			lastEnd[p.Key] = last
			total += len(p.Elements)
		}
		if total != n {
			t.Fatalf("trial %d: %d/%d elements in sessions", trial, total, n)
		}
	}
}
