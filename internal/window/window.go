// Package window implements the windowing mechanisms that the paper
// critiques and the content-driven alternatives it cites: fixed count and
// time windows (CQL [3]), landmark windows, session windows (Google
// Dataflow [1]), predicate windows (Ghanem et al. [8]), and threshold/delta
// frames (Grossniklaus et al. [9]).
//
// These are the baselines for the experiments: E1/E2/E3 contrast them with
// the explicit-state model, and E9 surveys the whole landscape. The package
// is also a substrate: the CQL layer (internal/cql) builds its
// stream-to-relation operators on these windowers.
//
// A Windower consumes elements in timestamp order and emits Panes — closed
// windows with their content — either eagerly (count-based and
// content-based windows close on data) or when a watermark passes the
// window end (time-based windows).
package window

import (
	"fmt"
	"sort"

	"repro/internal/element"
	"repro/internal/temporal"
)

// Pane is one closed window: its time bounds, an optional key (sessions and
// predicate windows are per-key), and the elements it contains in
// (timestamp, seq) order.
type Pane struct {
	// Window is the half-open time extent of the pane.
	Window temporal.Interval
	// Key is the partition key for keyed windowers, empty otherwise.
	Key string
	// Elements is the window content in timestamp order.
	Elements []*element.Element
}

// String renders the pane for diagnostics.
func (p Pane) String() string {
	k := ""
	if p.Key != "" {
		k = " key=" + p.Key
	}
	return fmt.Sprintf("pane%s %s (%d elements)", k, p.Window, len(p.Elements))
}

// Windower is the incremental evaluation interface shared by all window
// types. Implementations are not safe for concurrent use; the engine drives
// them single-threaded in timestamp order.
type Windower interface {
	// Observe feeds one element and returns any panes that close
	// immediately as a result (count windows, predicate closes, frames).
	Observe(el *element.Element) []Pane
	// AdvanceTo announces that no element with Timestamp < wm will arrive
	// and returns the panes whose windows end at or before wm.
	AdvanceTo(wm temporal.Instant) []Pane
	// Pending reports how many elements are currently buffered across all
	// open windows. This is the resource-overhead metric of experiment E1:
	// fixed windows hold data the application never needed.
	Pending() int
}

// ---------------------------------------------------------------------
// Tumbling time windows

// TumblingTime partitions time into consecutive fixed-size buckets
// [k*size, (k+1)*size) and closes each bucket when the watermark passes
// its end. Once the first element arrives, every subsequent bucket closes
// in order — including empty ones — so downstream relations observe window
// replacement even across quiet periods (CQL semantics: the relation
// becomes empty when the window is empty).
type TumblingTime struct {
	size    temporal.Instant
	buckets map[temporal.Instant][]*element.Element
	pending int
	nextEnd temporal.Instant
	started bool
}

// NewTumblingTime returns a tumbling time windower with the given size,
// which must be positive.
func NewTumblingTime(size temporal.Instant) *TumblingTime {
	if size <= 0 {
		panic("window: tumbling size must be positive")
	}
	return &TumblingTime{size: size, buckets: make(map[temporal.Instant][]*element.Element)}
}

func (w *TumblingTime) bucketStart(t temporal.Instant) temporal.Instant {
	b := t / w.size * w.size
	if t < 0 && t%w.size != 0 {
		b -= w.size
	}
	return b
}

// Observe implements Windower. Time windows never close on data.
func (w *TumblingTime) Observe(el *element.Element) []Pane {
	b := w.bucketStart(el.Timestamp)
	if !w.started {
		w.started = true
		w.nextEnd = b + w.size
	}
	w.buckets[b] = append(w.buckets[b], el)
	w.pending++
	return nil
}

// AdvanceTo implements Windower, closing every bucket whose end is <= wm,
// in order, including empty buckets between occupied ones.
func (w *TumblingTime) AdvanceTo(wm temporal.Instant) []Pane {
	if !w.started {
		return nil
	}
	var panes []Pane
	for w.nextEnd <= wm {
		b := w.nextEnd - w.size
		els := w.buckets[b]
		delete(w.buckets, b)
		w.pending -= len(els)
		element.SortElements(els)
		panes = append(panes, Pane{
			Window:   temporal.NewInterval(b, w.nextEnd),
			Elements: els,
		})
		w.nextEnd += w.size
	}
	return panes
}

// Pending implements Windower.
func (w *TumblingTime) Pending() int { return w.pending }

// ---------------------------------------------------------------------
// Sliding time windows

// SlidingTime emits a pane every `slide` covering the last `size` of time:
// windows [e-size, e) for every e that is a multiple of slide. An element
// belongs to ceil(size/slide) windows.
type SlidingTime struct {
	size, slide temporal.Instant
	buf         []*element.Element // timestamp-sorted (input is ordered)
	nextEnd     temporal.Instant
	started     bool
}

// NewSlidingTime returns a sliding time windower. size and slide must be
// positive; slide > size produces sampling (hopping) windows with gaps.
func NewSlidingTime(size, slide temporal.Instant) *SlidingTime {
	if size <= 0 || slide <= 0 {
		panic("window: sliding size and slide must be positive")
	}
	return &SlidingTime{size: size, slide: slide}
}

// Observe implements Windower.
func (w *SlidingTime) Observe(el *element.Element) []Pane {
	if !w.started {
		w.started = true
		// First window end boundary at or after this element's timestamp.
		w.nextEnd = (el.Timestamp/w.slide + 1) * w.slide
		if el.Timestamp < 0 {
			w.nextEnd = (el.Timestamp / w.slide) * w.slide
			for w.nextEnd <= el.Timestamp {
				w.nextEnd += w.slide
			}
		}
	}
	w.buf = append(w.buf, el)
	return nil
}

// AdvanceTo implements Windower, emitting one pane per slide boundary that
// the watermark has passed.
func (w *SlidingTime) AdvanceTo(wm temporal.Instant) []Pane {
	if !w.started {
		return nil
	}
	var panes []Pane
	for w.nextEnd <= wm {
		start := w.nextEnd - w.size
		// Collect elements in [start, nextEnd). The buffer is sorted.
		lo := sort.Search(len(w.buf), func(i int) bool { return w.buf[i].Timestamp >= start })
		hi := sort.Search(len(w.buf), func(i int) bool { return w.buf[i].Timestamp >= w.nextEnd })
		els := make([]*element.Element, hi-lo)
		copy(els, w.buf[lo:hi])
		panes = append(panes, Pane{
			Window:   temporal.NewInterval(start, w.nextEnd),
			Elements: els,
		})
		w.nextEnd += w.slide
		// Evict elements that can no longer contribute to any future pane.
		evictBefore := w.nextEnd - w.size
		cut := sort.Search(len(w.buf), func(i int) bool { return w.buf[i].Timestamp >= evictBefore })
		if cut > 0 {
			w.buf = append([]*element.Element(nil), w.buf[cut:]...)
		}
	}
	return panes
}

// Pending implements Windower.
func (w *SlidingTime) Pending() int { return len(w.buf) }

// ---------------------------------------------------------------------
// Count windows

// TumblingCount closes a window after every n elements.
type TumblingCount struct {
	n   int
	buf []*element.Element
}

// NewTumblingCount returns a tumbling count windower of size n > 0.
func NewTumblingCount(n int) *TumblingCount {
	if n <= 0 {
		panic("window: count must be positive")
	}
	return &TumblingCount{n: n}
}

// Observe implements Windower, closing a pane on every n-th element.
func (w *TumblingCount) Observe(el *element.Element) []Pane {
	w.buf = append(w.buf, el)
	if len(w.buf) < w.n {
		return nil
	}
	els := w.buf
	w.buf = nil
	return []Pane{countPane(els)}
}

// AdvanceTo implements Windower. Count windows ignore watermarks.
func (w *TumblingCount) AdvanceTo(temporal.Instant) []Pane { return nil }

// Pending implements Windower.
func (w *TumblingCount) Pending() int { return len(w.buf) }

// SlidingCount emits, every `slide` elements, a pane with the most recent
// n elements (once at least n have arrived).
type SlidingCount struct {
	n, slide int
	buf      []*element.Element
	sinceHop int
}

// NewSlidingCount returns a sliding count windower: panes of the last n
// elements, one pane every slide arrivals.
func NewSlidingCount(n, slide int) *SlidingCount {
	if n <= 0 || slide <= 0 {
		panic("window: count and slide must be positive")
	}
	return &SlidingCount{n: n, slide: slide}
}

// Observe implements Windower.
func (w *SlidingCount) Observe(el *element.Element) []Pane {
	w.buf = append(w.buf, el)
	if len(w.buf) > w.n {
		w.buf = append([]*element.Element(nil), w.buf[len(w.buf)-w.n:]...)
	}
	w.sinceHop++
	if w.sinceHop < w.slide {
		return nil
	}
	w.sinceHop = 0
	if len(w.buf) < w.n {
		return nil
	}
	els := make([]*element.Element, len(w.buf))
	copy(els, w.buf)
	return []Pane{countPane(els)}
}

// AdvanceTo implements Windower.
func (w *SlidingCount) AdvanceTo(temporal.Instant) []Pane { return nil }

// Pending implements Windower.
func (w *SlidingCount) Pending() int { return len(w.buf) }

func countPane(els []*element.Element) Pane {
	return Pane{
		Window:   temporal.NewInterval(els[0].Timestamp, els[len(els)-1].Timestamp+1),
		Elements: els,
	}
}

// ---------------------------------------------------------------------
// Landmark window

// Landmark accumulates every element since a fixed start and emits the
// entire prefix at each watermark. It models "from the beginning of the
// day" style queries; its unbounded buffer is the degenerate case of the
// resource-waste argument in §1.
type Landmark struct {
	start temporal.Instant
	buf   []*element.Element
}

// NewLandmark returns a landmark windower anchored at start.
func NewLandmark(start temporal.Instant) *Landmark { return &Landmark{start: start} }

// Observe implements Windower.
func (w *Landmark) Observe(el *element.Element) []Pane {
	if el.Timestamp >= w.start {
		w.buf = append(w.buf, el)
	}
	return nil
}

// AdvanceTo implements Windower, emitting the full prefix [start, wm).
func (w *Landmark) AdvanceTo(wm temporal.Instant) []Pane {
	if wm <= w.start {
		return nil
	}
	els := make([]*element.Element, len(w.buf))
	copy(els, w.buf)
	return []Pane{{Window: temporal.NewInterval(w.start, wm), Elements: els}}
}

// Pending implements Windower.
func (w *Landmark) Pending() int { return len(w.buf) }
