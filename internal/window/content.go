package window

import (
	"sort"

	"repro/internal/element"
	"repro/internal/temporal"
)

// ---------------------------------------------------------------------
// Session windows (Google Dataflow [1])

// Session groups elements per key into sessions separated by a minimum gap
// of inactivity. A session closes when the watermark passes the last
// element's timestamp plus the gap. This is the paper's first cited
// content-sensitive alternative: the click-stream use case of §1 maps each
// user's site visit to one session.
type Session struct {
	gap     temporal.Instant
	keyFn   func(*element.Element) string
	open    map[string][]*element.Element
	pending int
}

// NewSession returns a session windower with the given inactivity gap and
// key extractor.
func NewSession(gap temporal.Instant, keyFn func(*element.Element) string) *Session {
	if gap <= 0 {
		panic("window: session gap must be positive")
	}
	return &Session{gap: gap, keyFn: keyFn, open: make(map[string][]*element.Element)}
}

// Observe implements Windower. Input arrives in timestamp order, so an
// element either extends the key's open session or, if the gap has passed,
// closes it and starts a new one.
func (w *Session) Observe(el *element.Element) []Pane {
	k := w.keyFn(el)
	buf := w.open[k]
	var closed []Pane
	if n := len(buf); n > 0 && el.Timestamp >= buf[n-1].Timestamp+w.gap {
		closed = append(closed, w.sessionPane(k, buf))
		w.pending -= n
		buf = nil
	}
	w.open[k] = append(buf, el)
	w.pending++
	return closed
}

// AdvanceTo implements Windower, closing sessions whose gap has expired by
// the watermark.
func (w *Session) AdvanceTo(wm temporal.Instant) []Pane {
	var keys []string
	for k, buf := range w.open {
		if buf[len(buf)-1].Timestamp+w.gap <= wm {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	panes := make([]Pane, 0, len(keys))
	for _, k := range keys {
		buf := w.open[k]
		delete(w.open, k)
		w.pending -= len(buf)
		panes = append(panes, w.sessionPane(k, buf))
	}
	return panes
}

// Pending implements Windower.
func (w *Session) Pending() int { return w.pending }

func (w *Session) sessionPane(key string, els []*element.Element) Pane {
	return Pane{
		Window:   temporal.NewInterval(els[0].Timestamp, els[len(els)-1].Timestamp+w.gap),
		Key:      key,
		Elements: els,
	}
}

// ---------------------------------------------------------------------
// Predicate windows (Ghanem et al. [8])

// Predicate maintains one window per key that opens when an element
// satisfies the open predicate and closes when a later element of the same
// key satisfies the close predicate. Elements for keys with no open window
// are ignored. This models the "view maintenance" semantics of predicate
// windows: the window content is exactly the per-key episode delimited by
// the data itself — e.g. a user's events between login and logout.
type Predicate struct {
	keyFn   func(*element.Element) string
	opens   func(*element.Element) bool
	closes  func(*element.Element) bool
	open    map[string][]*element.Element
	pending int
}

// NewPredicate returns a predicate windower. An element may both open and
// close (opens is checked only when no window is open for the key).
func NewPredicate(
	keyFn func(*element.Element) string,
	opens, closes func(*element.Element) bool,
) *Predicate {
	return &Predicate{
		keyFn:  keyFn,
		opens:  opens,
		closes: closes,
		open:   make(map[string][]*element.Element),
	}
}

// Observe implements Windower: content decides both opening and closing,
// so panes can emit immediately.
func (w *Predicate) Observe(el *element.Element) []Pane {
	k := w.keyFn(el)
	buf, isOpen := w.open[k]
	if !isOpen {
		if !w.opens(el) {
			return nil
		}
		w.open[k] = []*element.Element{el}
		w.pending++
		if !w.closes(el) {
			return nil
		}
		buf = w.open[k]
	} else {
		buf = append(buf, el)
		w.open[k] = buf
		w.pending++
		if !w.closes(el) {
			return nil
		}
	}
	delete(w.open, k)
	w.pending -= len(buf)
	return []Pane{{
		Window:   temporal.NewInterval(buf[0].Timestamp, buf[len(buf)-1].Timestamp+1),
		Key:      k,
		Elements: buf,
	}}
}

// AdvanceTo implements Windower. Predicate windows are purely
// content-driven; watermarks do not close them.
func (w *Predicate) AdvanceTo(temporal.Instant) []Pane { return nil }

// Pending implements Windower.
func (w *Predicate) Pending() int { return w.pending }

// OpenKeys returns the number of keys with an open predicate window.
func (w *Predicate) OpenKeys() int { return len(w.open) }

// ---------------------------------------------------------------------
// Frames (Grossniklaus et al. [9])

// ThresholdFrame segments the stream into maximal runs where a numeric
// field stays at or above a threshold. A frame opens on the first element
// with field >= threshold and closes (exclusive) on the first element
// below it.
type ThresholdFrame struct {
	field     string
	threshold float64
	buf       []*element.Element
}

// NewThresholdFrame returns a threshold framer over the named numeric
// field.
func NewThresholdFrame(field string, threshold float64) *ThresholdFrame {
	return &ThresholdFrame{field: field, threshold: threshold}
}

// Observe implements Windower.
func (w *ThresholdFrame) Observe(el *element.Element) []Pane {
	v, ok := el.MustGet(w.field).AsFloat()
	if !ok {
		return nil
	}
	if v >= w.threshold {
		w.buf = append(w.buf, el)
		return nil
	}
	if len(w.buf) == 0 {
		return nil
	}
	return []Pane{w.flush(el.Timestamp)}
}

// AdvanceTo implements Windower; frames do not close on watermarks.
func (w *ThresholdFrame) AdvanceTo(temporal.Instant) []Pane { return nil }

// Flush closes any open frame at the given end time; call at end of stream.
func (w *ThresholdFrame) Flush(end temporal.Instant) []Pane {
	if len(w.buf) == 0 {
		return nil
	}
	return []Pane{w.flush(end)}
}

func (w *ThresholdFrame) flush(end temporal.Instant) Pane {
	els := w.buf
	w.buf = nil
	return Pane{Window: temporal.NewInterval(els[0].Timestamp, end), Elements: els}
}

// Pending implements Windower.
func (w *ThresholdFrame) Pending() int { return len(w.buf) }

// DeltaFrame segments the stream into runs where a numeric field stays
// within +/- delta of the frame's first value; a departure closes the
// frame and opens a new one seeded with the departing element.
type DeltaFrame struct {
	field string
	delta float64
	base  float64
	buf   []*element.Element
}

// NewDeltaFrame returns a delta framer over the named numeric field.
func NewDeltaFrame(field string, delta float64) *DeltaFrame {
	return &DeltaFrame{field: field, delta: delta}
}

// Observe implements Windower.
func (w *DeltaFrame) Observe(el *element.Element) []Pane {
	v, ok := el.MustGet(w.field).AsFloat()
	if !ok {
		return nil
	}
	if len(w.buf) == 0 {
		w.base = v
		w.buf = []*element.Element{el}
		return nil
	}
	if diff := v - w.base; diff <= w.delta && diff >= -w.delta {
		w.buf = append(w.buf, el)
		return nil
	}
	els := w.buf
	w.base = v
	w.buf = []*element.Element{el}
	return []Pane{{
		Window:   temporal.NewInterval(els[0].Timestamp, el.Timestamp),
		Elements: els,
	}}
}

// AdvanceTo implements Windower.
func (w *DeltaFrame) AdvanceTo(temporal.Instant) []Pane { return nil }

// Flush closes any open frame at the given end time; call at end of stream.
func (w *DeltaFrame) Flush(end temporal.Instant) []Pane {
	if len(w.buf) == 0 {
		return nil
	}
	els := w.buf
	w.buf = nil
	return []Pane{{
		Window:   temporal.NewInterval(els[0].Timestamp, end),
		Elements: els,
	}}
}

// Pending implements Windower.
func (w *DeltaFrame) Pending() int { return len(w.buf) }
