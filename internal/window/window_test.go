package window

import (
	"testing"

	"repro/internal/element"
	"repro/internal/temporal"
)

var sch = element.NewSchema(
	element.Field{Name: "user", Kind: element.KindString},
	element.Field{Name: "v", Kind: element.KindFloat},
)

func el(ts int64, user string, v float64) *element.Element {
	e := element.New("T", temporal.Instant(ts),
		element.NewTuple(sch, element.String(user), element.Float(v)))
	e.Seq = uint64(ts)
	return e
}

func feed(w Windower, els []*element.Element, finalWM temporal.Instant) []Pane {
	var panes []Pane
	for _, e := range els {
		panes = append(panes, w.Observe(e)...)
	}
	panes = append(panes, w.AdvanceTo(finalWM)...)
	return panes
}

func TestTumblingTime(t *testing.T) {
	w := NewTumblingTime(10)
	els := []*element.Element{el(0, "a", 1), el(5, "a", 1), el(10, "a", 1), el(25, "a", 1)}
	for _, e := range els {
		if got := w.Observe(e); got != nil {
			t.Fatal("time windows must not close on data")
		}
	}
	if w.Pending() != 4 {
		t.Errorf("pending: %d", w.Pending())
	}
	panes := w.AdvanceTo(20)
	if len(panes) != 2 {
		t.Fatalf("panes at wm=20: %d", len(panes))
	}
	if panes[0].Window != temporal.NewInterval(0, 10) || len(panes[0].Elements) != 2 {
		t.Errorf("pane 0: %v", panes[0])
	}
	if panes[1].Window != temporal.NewInterval(10, 20) || len(panes[1].Elements) != 1 {
		t.Errorf("pane 1: %v", panes[1])
	}
	if w.Pending() != 1 {
		t.Errorf("pending after close: %d", w.Pending())
	}
	if got := w.AdvanceTo(20); len(got) != 0 {
		t.Error("re-advancing must not re-emit")
	}
	panes = w.AdvanceTo(30)
	if len(panes) != 1 || panes[0].Window != temporal.NewInterval(20, 30) {
		t.Errorf("final pane: %v", panes)
	}
}

func TestTumblingTimePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewTumblingTime(0)
}

func TestSlidingTime(t *testing.T) {
	w := NewSlidingTime(10, 5)
	els := []*element.Element{el(1, "a", 1), el(4, "a", 1), el(8, "a", 1), el(12, "a", 1)}
	for _, e := range els {
		w.Observe(e)
	}
	panes := w.AdvanceTo(15)
	// Window ends at 5, 10, 15: [-5,5)={1,4}, [0,10)={1,4,8}, [5,15)={8,12}.
	if len(panes) != 3 {
		t.Fatalf("panes: %d", len(panes))
	}
	wantCounts := []int{2, 3, 2}
	for i, p := range panes {
		if len(p.Elements) != wantCounts[i] {
			t.Errorf("pane %d (%v): %d elements, want %d", i, p.Window, len(p.Elements), wantCounts[i])
		}
	}
	if panes[2].Window != temporal.NewInterval(5, 15) {
		t.Errorf("pane 2 bounds: %v", panes[2].Window)
	}
	// Eviction: elements below 15-10+5 = next window start are gone.
	if w.Pending() != 1 { // only ts=12 can contribute to [10,20)
		t.Errorf("pending after eviction: %d", w.Pending())
	}
}

func TestSlidingTimeHoppingGap(t *testing.T) {
	// slide > size: sampling windows with gaps.
	w := NewSlidingTime(5, 10)
	for _, e := range []*element.Element{el(1, "a", 1), el(7, "a", 1), el(9, "a", 1)} {
		w.Observe(e)
	}
	panes := w.AdvanceTo(20)
	// Ends at 10 and 20: [5,10)={7,9}, [15,20)={}.
	if len(panes) != 2 || len(panes[0].Elements) != 2 || len(panes[1].Elements) != 0 {
		t.Fatalf("hopping panes: %v", panes)
	}
}

func TestTumblingCount(t *testing.T) {
	w := NewTumblingCount(3)
	var panes []Pane
	for _, e := range []*element.Element{el(1, "a", 1), el(2, "a", 1), el(3, "a", 1), el(4, "a", 1)} {
		panes = append(panes, w.Observe(e)...)
	}
	if len(panes) != 1 || len(panes[0].Elements) != 3 {
		t.Fatalf("panes: %v", panes)
	}
	if panes[0].Window != temporal.NewInterval(1, 4) {
		t.Errorf("bounds: %v", panes[0].Window)
	}
	if w.Pending() != 1 {
		t.Errorf("pending: %d", w.Pending())
	}
	if got := w.AdvanceTo(100); len(got) != 0 {
		t.Error("count windows ignore watermarks")
	}
}

func TestSlidingCount(t *testing.T) {
	w := NewSlidingCount(3, 2)
	var panes []Pane
	for i := int64(1); i <= 7; i++ {
		panes = append(panes, w.Observe(el(i, "a", 1))...)
	}
	// Hops after elements 2,4,6; window full from element 3 → panes at 4 and 6.
	if len(panes) != 2 {
		t.Fatalf("panes: %d", len(panes))
	}
	if got := panes[0].Elements[0].Timestamp; got != 2 {
		t.Errorf("first pane starts at ts %d", got)
	}
	if got := panes[1].Elements[2].Timestamp; got != 6 {
		t.Errorf("second pane ends at ts %d", got)
	}
}

func TestLandmark(t *testing.T) {
	w := NewLandmark(10)
	for _, e := range []*element.Element{el(5, "a", 1), el(10, "a", 1), el(15, "a", 1)} {
		w.Observe(e)
	}
	if w.Pending() != 2 {
		t.Errorf("pending: %d (pre-landmark element should be dropped)", w.Pending())
	}
	panes := w.AdvanceTo(20)
	if len(panes) != 1 || len(panes[0].Elements) != 2 || panes[0].Window != temporal.NewInterval(10, 20) {
		t.Fatalf("landmark pane: %v", panes)
	}
	if got := w.AdvanceTo(5); len(got) != 0 {
		t.Error("watermark before landmark start emits nothing")
	}
}

func TestSession(t *testing.T) {
	key := func(e *element.Element) string { return e.MustGet("user").MustString() }
	w := NewSession(10, key)
	els := []*element.Element{
		el(0, "ann", 1), el(5, "ann", 1), el(7, "bob", 1),
		el(30, "ann", 1), // gap > 10 closes ann's first session
	}
	var panes []Pane
	for _, e := range els {
		panes = append(panes, w.Observe(e)...)
	}
	if len(panes) != 1 || panes[0].Key != "ann" || len(panes[0].Elements) != 2 {
		t.Fatalf("eager close: %v", panes)
	}
	if panes[0].Window != temporal.NewInterval(0, 15) {
		t.Errorf("session bounds: %v", panes[0].Window)
	}
	panes = w.AdvanceTo(45)
	// bob's session (7+10=17 <= 45) and ann's second (30+10=40 <= 45) close.
	if len(panes) != 2 {
		t.Fatalf("watermark close: %v", panes)
	}
	if panes[0].Key != "ann" || panes[1].Key != "bob" {
		t.Errorf("key order: %v", panes)
	}
	if w.Pending() != 0 {
		t.Errorf("pending: %d", w.Pending())
	}
}

func TestSessionNotYetExpired(t *testing.T) {
	w := NewSession(10, func(e *element.Element) string { return "k" })
	w.Observe(el(0, "a", 1))
	if got := w.AdvanceTo(9); len(got) != 0 {
		t.Error("session should stay open until gap expires")
	}
	if got := w.AdvanceTo(10); len(got) != 1 {
		t.Error("session should close at last+gap")
	}
}

func TestPredicate(t *testing.T) {
	key := func(e *element.Element) string { return e.MustGet("user").MustString() }
	opens := func(e *element.Element) bool { return e.MustGet("v").MustFloat() == 1 }  // login
	closes := func(e *element.Element) bool { return e.MustGet("v").MustFloat() == 9 } // logout
	w := NewPredicate(key, opens, closes)
	var panes []Pane
	els := []*element.Element{
		el(0, "ann", 5), // ignored: no open window, not an opener
		el(1, "ann", 1), // opens
		el(2, "ann", 3),
		el(3, "bob", 1), // opens bob
		el(4, "ann", 9), // closes ann
	}
	for _, e := range els {
		panes = append(panes, w.Observe(e)...)
	}
	if len(panes) != 1 || panes[0].Key != "ann" || len(panes[0].Elements) != 3 {
		t.Fatalf("predicate panes: %v", panes)
	}
	if w.OpenKeys() != 1 || w.Pending() != 1 {
		t.Errorf("open state: keys=%d pending=%d", w.OpenKeys(), w.Pending())
	}
	if got := w.AdvanceTo(100); len(got) != 0 {
		t.Error("predicate windows ignore watermarks")
	}
}

func TestPredicateOpenAndCloseSameElement(t *testing.T) {
	w := NewPredicate(
		func(e *element.Element) string { return "k" },
		func(e *element.Element) bool { return true },
		func(e *element.Element) bool { return true },
	)
	panes := w.Observe(el(1, "a", 1))
	if len(panes) != 1 || len(panes[0].Elements) != 1 {
		t.Fatalf("single-element episode: %v", panes)
	}
	if w.Pending() != 0 {
		t.Error("pending should drop to 0")
	}
}

func TestThresholdFrame(t *testing.T) {
	w := NewThresholdFrame("v", 10)
	var panes []Pane
	for _, e := range []*element.Element{
		el(0, "a", 3), el(1, "a", 12), el(2, "a", 15), el(3, "a", 4), el(4, "a", 11),
	} {
		panes = append(panes, w.Observe(e)...)
	}
	if len(panes) != 1 || len(panes[0].Elements) != 2 {
		t.Fatalf("threshold frames: %v", panes)
	}
	if panes[0].Window != temporal.NewInterval(1, 3) {
		t.Errorf("frame bounds: %v", panes[0].Window)
	}
	final := w.Flush(10)
	if len(final) != 1 || len(final[0].Elements) != 1 || final[0].Window != temporal.NewInterval(4, 10) {
		t.Errorf("flush: %v", final)
	}
	if got := w.Flush(20); len(got) != 0 {
		t.Error("second flush should be empty")
	}
}

func TestDeltaFrame(t *testing.T) {
	w := NewDeltaFrame("v", 2)
	var panes []Pane
	for _, e := range []*element.Element{
		el(0, "a", 10), el(1, "a", 11), el(2, "a", 9), el(3, "a", 20), el(4, "a", 21),
	} {
		panes = append(panes, w.Observe(e)...)
	}
	if len(panes) != 1 || len(panes[0].Elements) != 3 {
		t.Fatalf("delta frames: %v", panes)
	}
	final := w.Flush(10)
	if len(final) != 1 || len(final[0].Elements) != 2 {
		t.Errorf("flush: %v", final)
	}
}

func TestFeedHelperAcrossTypes(t *testing.T) {
	// Smoke check: each windower handles the same batch without panics and
	// pane element order is non-decreasing in time.
	els := []*element.Element{el(0, "a", 12), el(3, "b", 5), el(7, "a", 14), el(12, "b", 20)}
	ws := []Windower{
		NewTumblingTime(5),
		NewSlidingTime(10, 5),
		NewTumblingCount(2),
		NewSlidingCount(2, 1),
		NewLandmark(0),
		NewSession(4, func(e *element.Element) string { return e.MustGet("user").MustString() }),
		NewPredicate(func(e *element.Element) string { return "k" },
			func(e *element.Element) bool { return true },
			func(e *element.Element) bool { return e.MustGet("v").MustFloat() > 15 }),
		NewThresholdFrame("v", 10),
		NewDeltaFrame("v", 3),
	}
	for i, w := range ws {
		for _, p := range feed(w, els, 100) {
			for j := 1; j < len(p.Elements); j++ {
				if p.Elements[j].Timestamp < p.Elements[j-1].Timestamp {
					t.Errorf("windower %d: pane %v out of order", i, p)
				}
			}
			if p.Window.IsEmpty() {
				t.Errorf("windower %d: empty pane interval %v", i, p.Window)
			}
		}
	}
}

func TestPaneString(t *testing.T) {
	p := Pane{Window: temporal.NewInterval(0, 10), Key: "k"}
	if p.String() == "" {
		t.Error("pane string")
	}
}
