package statestream_test

import (
	"fmt"
	"testing"
	"time"

	statestream "repro"
)

var schema = statestream.NewSchema(
	statestream.Field{Name: "visitor", Kind: statestream.KindString},
	statestream.Field{Name: "room", Kind: statestream.KindString},
)

func entry(at time.Duration, visitor, room string) *statestream.Element {
	return statestream.NewElement("RoomEntry", statestream.Instant(at),
		statestream.NewTuple(schema, statestream.String(visitor), statestream.String(room)))
}

// TestPublicAPIEndToEnd exercises the README quickstart path through the
// facade only: rules, run, current + historical queries.
func TestPublicAPIEndToEnd(t *testing.T) {
	engine := statestream.New(statestream.StateFirst)
	if err := engine.DeployRules(`
RULE position ON RoomEntry AS r
THEN REPLACE position(r.visitor) = r.room`); err != nil {
		t.Fatal(err)
	}
	els := []*statestream.Element{
		entry(1*time.Minute, "ann", "hall"),
		entry(2*time.Minute, "ann", "lab"),
	}
	if err := engine.Run(statestream.FromElements(els)); err != nil {
		t.Fatal(err)
	}
	res, err := engine.Query("SELECT entity, value FROM position")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].MustString() != "lab" {
		t.Fatalf("current: %v", res.Rows)
	}
	res, err = engine.Query("SELECT value FROM position ASOF 90000000000 WHERE entity = 'ann'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "hall" {
		t.Fatalf("historical: %v", res.Rows)
	}
}

func TestPublicAPIProcessorsAndGates(t *testing.T) {
	engine := statestream.New(statestream.StateFirst)
	if err := engine.DeployRules(`
RULE mark ON RoomEntry AS r WHERE r.room = 'vault'
THEN REPLACE flagged(r.visitor) = true`); err != nil {
		t.Fatal(err)
	}
	gate, err := statestream.ParseExpr("EXISTS flagged(e.visitor)")
	if err != nil {
		t.Fatal(err)
	}
	q := statestream.NewContinuousQuery("Flags", "RoomEntry",
		statestream.NewTumblingTime(statestream.Instant(time.Hour)), false,
		statestream.IStream,
		statestream.Aggregate([]string{"visitor"},
			statestream.AggSpec{Func: statestream.Count, As: "moves"}),
	)
	if err := engine.DeployProcessor(&statestream.Processor{
		Name: "flagged-moves", Source: "RoomEntry", Gate: gate, Op: q,
	}); err != nil {
		t.Fatal(err)
	}
	els := []*statestream.Element{
		entry(1*time.Minute, "ann", "hall"),
		entry(2*time.Minute, "ann", "vault"), // flags ann; passes gate same tick
		entry(3*time.Minute, "ann", "lab"),
		entry(4*time.Minute, "bob", "hall"), // never flagged
	}
	if err := engine.Run(statestream.FromElements(els)); err != nil {
		t.Fatal(err)
	}
	if err := engine.Process(statestream.WatermarkMsg(statestream.Instant(time.Hour))); err != nil {
		t.Fatal(err)
	}
	out := engine.Output("flagged-moves")
	if len(out) != 1 || out[0].MustGet("moves").MustInt() != 2 {
		t.Fatalf("gated aggregate: %v", out)
	}
	stats := engine.Stats()
	if stats[0].Gated != 2 { // ann@hall (pre-flag) + bob@hall
		t.Fatalf("stats: %+v", stats)
	}
}

func TestPublicAPIReasoning(t *testing.T) {
	engine := statestream.New(statestream.StateFirst)
	ont := statestream.NewOntology()
	if err := ont.SubClassOf("novel", "books"); err != nil {
		t.Fatal(err)
	}
	r := engine.EnableReasoning(ont)
	if err := r.AddRule(statestream.HornRule{
		Name: "promoted",
		Body: []statestream.TriplePattern{
			{Attr: "type", Entity: statestream.Var("x"), Value: statestream.Const(statestream.String("books"))},
		},
		Head: statestream.TriplePattern{
			Attr: "shelf", Entity: statestream.Var("x"), Value: statestream.Const(statestream.String("back")),
		},
	}); err != nil {
		t.Fatal(err)
	}
	engine.Store().Put("p1", "type", statestream.String("novel"), 0)
	engine.Process(statestream.WatermarkMsg(10))
	res, err := engine.Query("SELECT entity FROM shelf WHERE value = 'back' WITH INFERENCE")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "p1" {
		t.Fatalf("chained inference: %v", res.Rows)
	}
}

func TestPublicAPIPatternsAndWindows(t *testing.T) {
	m, err := statestream.NewMatcher(statestream.WithinPattern(
		statestream.SequencePattern(
			statestream.EventPattern("A"), statestream.EventPattern("B")),
		statestream.Instant(time.Minute)))
	if err != nil {
		t.Fatal(err)
	}
	a := statestream.NewElement("A", 0, statestream.NewTuple(schema, statestream.String("x"), statestream.String("y")))
	b := statestream.NewElement("B", 10, statestream.NewTuple(schema, statestream.String("x"), statestream.String("y")))
	m.Observe(a)
	got := m.Observe(b)
	if len(got) != 1 || got[0].Interval != statestream.NewInterval(0, 11) {
		t.Fatalf("pattern match: %v", got)
	}

	w := statestream.NewSessionWindow(statestream.Instant(time.Minute),
		func(e *statestream.Element) string { return e.MustGet("visitor").MustString() })
	w.Observe(entry(0, "ann", "hall"))
	panes := w.AdvanceTo(statestream.Instant(2 * time.Minute))
	if len(panes) != 1 || panes[0].Key != "ann" {
		t.Fatalf("session window: %v", panes)
	}
}

func TestPublicAPIStoreAndFacts(t *testing.T) {
	st := statestream.NewStore()
	f := statestream.NewFact("e", "a", statestream.Int(1), statestream.Since(5))
	if err := st.Assert(f); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Current("e", "a"); !ok || got.Value.MustInt() != 1 {
		t.Fatalf("store: %v %v", got, ok)
	}
	if statestream.Forever <= 0 || statestream.MinInstant >= 0 {
		t.Error("sentinels")
	}
	if statestream.FromTime(time.Unix(1, 0)) != statestream.FromMillis(1000) {
		t.Error("time conversions")
	}
	if statestream.Bool(true).Kind() != statestream.KindBool ||
		statestream.Float(1).Kind() != statestream.KindFloat ||
		statestream.Time(1).Kind() != statestream.KindTime ||
		!statestream.Null.IsNull() {
		t.Error("value constructors")
	}
}

func TestPublicAPIRuleSetAndMerge(t *testing.T) {
	set, err := statestream.ParseRules(`
RULE a ON RoomEntry AS x THEN REPLACE p(x.visitor) = x.room`)
	if err != nil || set.Len() != 1 {
		t.Fatalf("ParseRules: %v %v", set, err)
	}
	engine := statestream.New(statestream.StreamFirst)
	engine.DeployRuleSet(set)

	a := []*statestream.Element{entry(1, "a", "r")}
	b := []*statestream.Element{entry(2, "b", "r")}
	merged := statestream.MergeSorted(a, b)
	if len(merged) != 2 || merged[0].Timestamp != 1 {
		t.Fatalf("merge: %v", merged)
	}
	msgs := statestream.WithPeriodicWatermarks(merged, 10)
	if err := engine.Run(msgs); err != nil {
		t.Fatal(err)
	}
	if st := engine.Store().Stats(); st.Keys != 2 {
		t.Fatalf("state after run: %+v", st)
	}
	if engine.Policy() != statestream.StreamFirst {
		t.Error("policy accessor")
	}
}

func TestPublicAPIRelationalOps(t *testing.T) {
	// Select + Project compose in a continuous query.
	q := statestream.NewContinuousQuery("Q", "RoomEntry",
		statestream.NewTumblingCount(2), false, statestream.IStream,
		statestream.Select(func(tp *statestream.Tuple) bool {
			return tp.MustGet("room").MustString() != "hall"
		}),
		statestream.Project("visitor"),
	)
	engine := statestream.New(statestream.StateFirst)
	if err := engine.DeployProcessor(&statestream.Processor{Name: "q", Op: q}); err != nil {
		t.Fatal(err)
	}
	engine.Run(statestream.FromElements([]*statestream.Element{
		entry(1, "ann", "hall"), entry(2, "bob", "lab"),
	}))
	out := engine.Output("q")
	if len(out) != 1 || out[0].Tuple.Schema().Len() != 1 {
		t.Fatalf("relational chain: %v", out)
	}
}

// TestPublicAPIBitemporal exercises the StateDB surface and the SYSTEM
// TIME dialect through the facade only: option-based construction,
// retroactive correction, belief-pinned reads and queries.
func TestPublicAPIBitemporal(t *testing.T) {
	engine := statestream.New(statestream.WithPolicy(statestream.StateFirst))
	if err := engine.DeployRules(`
RULE position ON RoomEntry AS r
THEN REPLACE position(r.visitor) = r.room`); err != nil {
		t.Fatal(err)
	}
	els := []*statestream.Element{
		entry(1*time.Minute, "ann", "hall"),
		entry(3*time.Minute, "ann", "lab"),
	}
	if err := engine.Run(statestream.FromElements(els)); err != nil {
		t.Fatal(err)
	}

	// Retroactive correction recorded at t=10m: ann was in the vault over
	// [90s, 150s).
	var db statestream.StateDB = engine.DB()
	if err := db.Put("ann", "position", statestream.String("vault"),
		statestream.WithValidTime(statestream.Instant(90*time.Second)),
		statestream.WithEndValidTime(statestream.Instant(150*time.Second)),
		statestream.WithTransactionTime(statestream.Instant(10*time.Minute))); err != nil {
		t.Fatal(err)
	}

	// Corrected read through Find.
	if f, ok := db.Find("ann", "position",
		statestream.AsOfValidTime(statestream.Instant(2*time.Minute))); !ok || f.Value.MustString() != "vault" {
		t.Fatalf("corrected find: %v %v", f, ok)
	}
	// Belief-pinned read predates the correction.
	if f, ok := db.Find("ann", "position",
		statestream.AsOfValidTime(statestream.Instant(2*time.Minute)),
		statestream.AsOfTransactionTime(statestream.Instant(5*time.Minute))); !ok || f.Value.MustString() != "hall" {
		t.Fatalf("belief-pinned find: %v %v", f, ok)
	}
	// The SYSTEM TIME dialect agrees.
	res, err := engine.Query(fmt.Sprintf(
		"SELECT value FROM position ASOF %d SYSTEM TIME ASOF %d WHERE entity = 'ann'",
		statestream.Instant(2*time.Minute), statestream.Instant(5*time.Minute)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "hall" {
		t.Fatalf("SYSTEM TIME query: %v", res.Rows)
	}
	// The audit trail retains the superseded record.
	audit := db.History("ann", "position", statestream.AllVersions())
	superseded := 0
	for _, f := range audit {
		if f.Superseded() {
			superseded++
		}
	}
	if superseded == 0 {
		t.Fatal("correction should supersede, not destroy")
	}
}

// TestPublicAPIDurableRecovery exercises the durability surface through
// the facade only: a durable engine killed without Close recovers its
// state — current and SYSTEM TIME reads — on the next construction, and
// a standalone durable store round-trips a flush.
func TestPublicAPIDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	engine := statestream.New(statestream.WithDurableDir(dir))
	if err := engine.DeployRules(`
RULE position ON RoomEntry AS r
THEN REPLACE position(r.visitor) = r.room`); err != nil {
		t.Fatal(err)
	}
	els := []*statestream.Element{
		entry(1*time.Minute, "ann", "hall"),
		entry(2*time.Minute, "ann", "lab"),
	}
	if err := engine.Run(statestream.FromElements(els)); err != nil {
		t.Fatal(err)
	}
	// Crash: no flush (Abandon drops the directory lock and descriptors
	// exactly as process death would). The WAL tail alone must carry the
	// state. Rules are code, not state: the restarted engine redeploys
	// them.
	engine.Durable().Abandon()
	reborn := statestream.New(statestream.WithDurableDir(dir))
	if err := reborn.DeployRules(`
RULE position ON RoomEntry AS r
THEN REPLACE position(r.visitor) = r.room`); err != nil {
		t.Fatal(err)
	}
	if err := reborn.Run([]statestream.Message{
		statestream.ElementMsg(entry(3*time.Minute, "ann", "vault")),
		statestream.WatermarkMsg(statestream.Instant(4 * time.Minute)),
	}); err != nil {
		t.Fatal(err)
	}
	res, err := reborn.Query("SELECT entity, value FROM position")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].MustString() != "vault" {
		t.Fatalf("current after restart: %v", res.Rows)
	}
	// The pre-crash history survived: ann was in the hall at t=90s.
	res, err = reborn.Query("SELECT value FROM position ASOF 90000000000 WHERE entity = 'ann'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].MustString() != "hall" {
		t.Fatalf("historical after restart: %v", res.Rows)
	}
	if reborn.Durable() == nil {
		t.Fatal("Durable() should expose the segment store")
	}
	if err := reborn.Close(); err != nil {
		t.Fatal(err)
	}

	sdir := t.TempDir()
	ds, err := statestream.OpenDurableStore(sdir, statestream.DurableFlushEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("ann", "clearance", statestream.String("secret")); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	ds2, err := statestream.OpenDurableStore(sdir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	var info statestream.DurableInfo = ds2.Info()
	if info.Segments == 0 {
		t.Fatalf("close should have flushed a segment: %+v", info)
	}
	if f, ok := ds2.Find("ann", "clearance"); !ok || f.Value.MustString() != "secret" {
		t.Fatalf("standalone durable store lost the fact: %v ok=%v", f, ok)
	}
}
