// Package statestream is a stream processing library with explicit state
// management, reproducing the model of Margara, Dell'Aglio, and Bernstein,
// "Break the Windows: Explicit State Management for Stream Processing
// Systems" (EDBT 2017).
//
// The paper's Figure 1 architecture maps onto this API as follows:
//
//   - Input streams are timestamped Elements fed to an Engine in
//     timestamp order (Engine.Process / Engine.Run).
//   - State management rules, written in a textual rule language
//     (Engine.DeployRules), turn input elements into updates of the state
//     repository: facts annotated with their time of validity.
//   - Stream processing rules are Processors (Engine.DeployProcessor):
//     CQL-style continuous queries over windows, optionally preceded by a
//     state-condition Gate and state Enrichment.
//   - The state repository is a bitemporal database (§3.3's "temporal
//     database"): every fact version carries a valid-time interval and a
//     transaction-time interval. It is queryable on demand (Engine.Query)
//     with a temporal SELECT dialect — CURRENT, ASOF t, DURING a TO b,
//     HISTORY — each composable with SYSTEM TIME ASOF tt to query a past
//     belief. The option-based StateDB surface (Engine.DB) supports
//     retroactive corrections that supersede, never destroy, history.
//   - A Reasoner (Engine.EnableReasoning or WithReasoning) materializes
//     implicit facts from ontologies and Horn rules, augmenting both
//     queries and gates.
//   - WithDurableDir makes the state repository durable: committed
//     lineage heads flush into append-only, checksummed segment files, a
//     WAL covers the tail, and constructing an engine on the same
//     directory recovers the exact bitemporal state (Engine.Close
//     flushes the final cut).
//
// Minimal example — the paper's building-security use case:
//
//	engine := statestream.New(statestream.StateFirst) // or New(WithPolicy(...), WithLog(...))
//	engine.DeployRules(`
//	    RULE position ON RoomEntry AS r
//	    THEN REPLACE position(r.visitor) = r.room`)
//	engine.Run(msgs) // timestamp-ordered elements + watermarks
//	res, _ := engine.Query("SELECT entity, value FROM position")
//
//	// Retroactive correction + audit query:
//	engine.DB().Put("ann", "position", statestream.String("vault"),
//	    statestream.WithValidTime(10), statestream.WithEndValidTime(20))
//	res, _ = engine.Query("SELECT entity, value FROM position ASOF 15 SYSTEM TIME ASOF 12")
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory and the bitemporal API map.
package statestream

import (
	"io"
	"time"

	"repro/internal/cep"
	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/element"
	"repro/internal/lang"
	"repro/internal/query"
	"repro/internal/reason"
	"repro/internal/rules"
	"repro/internal/state"
	"repro/internal/state/segment"
	"repro/internal/stream"
	"repro/internal/subscribe"
	"repro/internal/temporal"
	"repro/internal/window"
)

// Core engine types (Figure 1).
type (
	// Engine is the explicit-state stream processing system.
	Engine = core.Engine
	// Processor is one deployed stream processing pipeline.
	Processor = core.Processor
	// EnrichSpec adds a state-derived field to stream elements.
	EnrichSpec = core.EnrichSpec
	// Policy fixes the state/stream interaction semantics (§3.3).
	Policy = core.Policy
	// ProcessorStats reports per-processor element counters.
	ProcessorStats = core.ProcessorStats
	// Option configures an Engine at construction (Policy values are
	// Options themselves, so New(StateFirst) still works).
	Option = core.Option
)

// Interaction policies (see Policy).
const (
	StateFirst  = core.StateFirst
	StreamFirst = core.StreamFirst
	Snapshot    = core.Snapshot
)

// New returns an engine configured by the given options; with none it
// uses the StateFirst policy. A bare Policy is accepted as an option.
func New(opts ...Option) *Engine { return core.New(opts...) }

// WithPolicy selects the state/stream interaction policy.
func WithPolicy(p Policy) Option { return core.WithPolicy(p) }

// WithLog attaches an append-only mutation log to the engine's state
// repository.
func WithLog(l *Log) Option { return core.WithLog(l) }

// WithReasoning attaches a reasoner over the given ontology (nil for an
// empty one).
func WithReasoning(ont *Ontology) Option { return core.WithReasoning(ont) }

// WithParallelism sets the ingestion worker count (default 1 = exact
// serial semantics). With n > 1 the engine micro-batches elements between
// watermarks and fans rule application out across n workers partitioned
// by routing key; processor evaluation and CEP pattern matching stay
// serial and deterministic. See DESIGN.md "Ingestion pipeline" for the
// determinism conditions.
func WithParallelism(n int) Option { return core.WithParallelism(n) }

// WithRoutingKey sets the parallel-ingestion partitioning key: elements
// with equal keys are applied by one worker, in order. Defaults to the
// element's first tuple field.
func WithRoutingKey(fn func(*Element) string) Option { return core.WithRoutingKey(fn) }

// WithEmittedRetention bounds how many EMIT-derived elements the engine
// retains for Emitted (default core.DefaultEmittedRetention; n <= 0 keeps
// everything).
func WithEmittedRetention(n int) Option { return core.WithEmittedRetention(n) }

// WithAutoCompact schedules growth-triggered per-shard state compaction:
// once any shard accumulates growth new records, the next write to it
// prunes that shard's history older than retain behind the watermark.
// Compaction publishes fresh lineage heads, so in-flight lock-free
// readers are never blocked by a sweep.
func WithAutoCompact(retain time.Duration, growth int) Option {
	return core.WithAutoCompact(retain, growth)
}

// WithDurableDir persists the engine's state repository in a durable
// segment directory: committed lineage heads flush as immutable,
// checksummed segment files as the watermark advances, a WAL covers the
// tail since the last flush, and constructing an engine on an existing
// directory recovers the exact bitemporal state — without replaying the
// full history. Call Engine.Close to flush the final cut; crashing
// without Close loses nothing but that flush. See DESIGN.md
// "Durability".
func WithDurableDir(path string, opts ...DurableOption) Option {
	return core.WithDurableDir(path, opts...)
}

// DurableFlushEvery tunes WithDurableDir's background flush cadence: a
// flush starts once the WAL tail holds n records and the watermark
// advances.
func DurableFlushEvery(n int) DurableOption { return segment.WithFlushEvery(n) }

// DurableRetry tunes how background flushes respond to transient disk
// errors (capped exponential backoff with jitter) before the store
// degrades. See DESIGN.md "Failure model".
func DurableRetry(p DurableRetryPolicy) DurableOption { return segment.WithRetryPolicy(p) }

// DurableBeliefRetention bounds how long superseded belief versions stay
// reachable in durable storage: background segment merges drop versions
// whose supersession is older than d relative to the merge's durable
// cut. Current beliefs and valid-time history are never pruned — only
// transaction-time AsOf reads older than the horizon lose resolution.
// See DESIGN.md "Compaction and the segmented WAL".
func DurableBeliefRetention(d time.Duration) DurableOption {
	return segment.WithBeliefRetention(d)
}

// WithResidencyBudget caps the RAM working set of a durable engine at n
// estimated bytes. As the watermark advances, fully-flushed cold
// lineages are evicted least-recently-used; reads and scans serve them
// from segment frames with identical results, and writes to evicted
// keys fault their history back in. Zero (the default) keeps everything
// resident. See DESIGN.md "Larger-than-RAM state".
func WithResidencyBudget(n int64) Option { return core.WithResidencyBudget(n) }

// DurableResidencyBudget is the standalone-store form of
// WithResidencyBudget, for OpenDurableStore.
func DurableResidencyBudget(n int64) DurableOption {
	return segment.WithResidencyBudget(n)
}

// DurableWALRotateBytes tunes the segmented WAL's rotation threshold:
// the tail log rotates to a fresh numbered file once the active one
// reaches n bytes, so post-flush truncation is whole-file drops instead
// of an in-place rewrite.
func DurableWALRotateBytes(n int64) DurableOption { return segment.WithWALRotateBytes(n) }

// Data model.
type (
	// Value is a dynamically typed scalar.
	Value = element.Value
	// Kind is a Value's dynamic type.
	Kind = element.Kind
	// Field is one named, typed schema attribute.
	Field = element.Field
	// Schema describes the tuples of one stream.
	Schema = element.Schema
	// Tuple is one row conforming to a schema.
	Tuple = element.Tuple
	// Element is one stream element: tuple + stream name + timestamp.
	Element = element.Element
	// Fact is one timed state element: attr(entity)=value over a
	// validity interval.
	Fact = element.Fact
	// FactKey identifies a fact lineage.
	FactKey = element.FactKey
)

// Value kinds.
const (
	KindNull   = element.KindNull
	KindBool   = element.KindBool
	KindInt    = element.KindInt
	KindFloat  = element.KindFloat
	KindString = element.KindString
	KindTime   = element.KindTime
)

// Value constructors.
var (
	// Null is the absent value.
	Null = element.Null
)

// Bool wraps a boolean value.
func Bool(b bool) Value { return element.Bool(b) }

// Int wraps an integer value.
func Int(i int64) Value { return element.Int(i) }

// Float wraps a float value.
func Float(f float64) Value { return element.Float(f) }

// String wraps a string value.
func String(s string) Value { return element.String(s) }

// Time wraps an instant value.
func Time(t Instant) Value { return element.Time(t) }

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) *Schema { return element.NewSchema(fields...) }

// NewTuple pairs a schema with values.
func NewTuple(schema *Schema, values ...Value) *Tuple { return element.NewTuple(schema, values...) }

// NewElement builds a stream element.
func NewElement(stream string, ts Instant, tuple *Tuple) *Element {
	return element.New(stream, ts, tuple)
}

// NewFact builds a fact with explicit validity.
func NewFact(entity, attribute string, v Value, validity Interval) *Fact {
	return element.NewFact(entity, attribute, v, validity)
}

// Time algebra.
type (
	// Instant is a point on the application time line (ns since epoch).
	Instant = temporal.Instant
	// Interval is a half-open validity interval [Start, End).
	Interval = temporal.Interval
)

// Distinguished instants.
const (
	// Forever marks a still-open validity interval end.
	Forever = temporal.Forever
	// MinInstant is the earliest representable instant.
	MinInstant = temporal.MinInstant
)

// FromTime converts a time.Time to an Instant.
func FromTime(t time.Time) Instant { return temporal.FromTime(t) }

// FromMillis converts epoch milliseconds to an Instant.
func FromMillis(ms int64) Instant { return temporal.FromMillis(ms) }

// NewInterval returns [start, end).
func NewInterval(start, end Instant) Interval { return temporal.NewInterval(start, end) }

// Since returns the open interval [start, Forever).
func Since(start Instant) Interval { return temporal.Since(start) }

// Streams and messages.
type (
	// Message is one unit of stream input: an element or a watermark.
	Message = stream.Message
	// Operator is a synchronous stream transformer.
	Operator = stream.Operator
	// Collector is a sink operator retaining elements.
	Collector = stream.Collector
)

// ElementMsg wraps an element in a message.
func ElementMsg(el *Element) Message { return stream.ElementMsg(el) }

// WatermarkMsg builds a watermark message asserting no earlier elements
// will follow.
func WatermarkMsg(t Instant) Message { return stream.WatermarkMsg(t) }

// FromElements converts a timestamp-sorted batch to messages with a final
// flushing watermark.
func FromElements(els []*Element) []Message { return stream.FromElements(els) }

// WithPeriodicWatermarks interleaves watermarks every period.
func WithPeriodicWatermarks(els []*Element, period Instant) []Message {
	return stream.WithPeriodicWatermarks(els, period)
}

// MergeSorted merges timestamp-sorted streams deterministically.
func MergeSorted(inputs ...[]*Element) []*Element { return stream.MergeSorted(inputs...) }

// Windows (the baselines of §2, usable inside Processors).
type (
	// Windower is the incremental window evaluation interface.
	Windower = window.Windower
	// Pane is one closed window with its contents.
	Pane = window.Pane
)

// NewTumblingTime returns fixed consecutive time windows.
func NewTumblingTime(size Instant) Windower { return window.NewTumblingTime(size) }

// NewSlidingTime returns overlapping time windows.
func NewSlidingTime(size, slide Instant) Windower { return window.NewSlidingTime(size, slide) }

// NewTumblingCount returns fixed-size count windows.
func NewTumblingCount(n int) Windower { return window.NewTumblingCount(n) }

// NewSlidingCount returns sliding count windows.
func NewSlidingCount(n, slide int) Windower { return window.NewSlidingCount(n, slide) }

// NewSessionWindow returns gap-based per-key session windows [1].
func NewSessionWindow(gap Instant, key func(*Element) string) Windower {
	return window.NewSession(gap, key)
}

// NewPredicateWindow returns content-delimited per-key windows [8].
func NewPredicateWindow(key func(*Element) string, opens, closes func(*Element) bool) Windower {
	return window.NewPredicate(key, opens, closes)
}

// Continuous queries (CQL [3]).
type (
	// ContinuousQuery is a deployed CQL query (implements Operator).
	ContinuousQuery = cql.Query
	// AggSpec is one aggregate column of a continuous query.
	AggSpec = cql.AggSpec
	// EmitMode selects IStream/DStream/RStream output.
	EmitMode = cql.EmitMode
	// RelOp is an incremental relational operator.
	RelOp = cql.RelOp
)

// Relation-to-stream modes.
const (
	IStream = cql.IStream
	DStream = cql.DStream
	RStream = cql.RStream
)

// Aggregate functions.
const (
	Count = cql.Count
	Sum   = cql.Sum
	Avg   = cql.Avg
	Min   = cql.Min
	Max   = cql.Max
)

// NewContinuousQuery builds a continuous query: stream → window →
// relational chain → stream. Set keyed for per-key windowers (sessions,
// predicate windows).
func NewContinuousQuery(name, source string, w Windower, keyed bool, mode EmitMode, ops ...RelOp) *ContinuousQuery {
	return cql.NewQuery(name, source, w, keyed, mode, ops...)
}

// Select returns a filtering relational operator.
func Select(pred func(*Tuple) bool) RelOp { return cql.NewSelect(pred) }

// Project returns a projecting relational operator.
func Project(fields ...string) RelOp { return cql.NewProject(fields...) }

// Aggregate returns a grouping/aggregating relational operator.
func Aggregate(groupBy []string, specs ...AggSpec) RelOp {
	return cql.NewAggregate(groupBy, specs...)
}

// Expressions, rules, queries.
type (
	// Expr is a parsed expression (gates, rule clauses).
	Expr = lang.Expr
	// Rule is a parsed state management rule.
	Rule = rules.Rule
	// RuleSet is a compiled set of state management rules.
	RuleSet = rules.Set
	// QueryResult is the output table of an on-demand state query.
	QueryResult = query.Result
	// PreparedQuery is an on-demand query parsed and planned once
	// against an engine (Engine.Prepare), executable many times: each
	// Exec pins a fresh snapshot (or one supplied with AtSnapshot) and
	// runs the planned partitioned gather without re-parsing.
	PreparedQuery = core.PreparedQuery
	// QueryOpt configures one execution of a prepared query
	// (AtSnapshot, AsOfSystemTime, WithQueryParallelism).
	QueryOpt = core.QueryOpt
	// QueryPlan is the physical plan of a prepared query
	// (PreparedQuery.Explain): partitions, pushed predicates, value
	// bounds, and pruning decisions.
	QueryPlan = query.Plan
	// StandingQuery is a deployed continuous state query
	// (Engine.RegisterStateQuery): it re-evaluates on relevant state
	// changes and pushes changed results.
	StandingQuery = query.Continuous
)

// Prepared query execution options (see PreparedQuery.Exec).

// AtSnapshot evaluates a prepared execution against an explicit pinned
// snapshot handle — e.g. one received in a WatermarkBatch — instead of
// pinning a fresh one.
func AtSnapshot(sn *StateSnapshot) QueryOpt { return core.AtSnapshot(sn) }

// AsOfSystemTime pins a prepared execution's belief (transaction time),
// overriding any SYSTEM TIME ASOF clause in the query text.
func AsOfSystemTime(t Instant) QueryOpt { return core.AsOfSystemTime(t) }

// WithQueryParallelism bounds the partitioned gather's workers for one
// prepared execution (n <= 0 restores the default; 1 forces serial).
func WithQueryParallelism(n int) QueryOpt { return core.WithQueryParallelism(n) }

// ParseExpr parses an expression, e.g. a processor gate:
// "EXISTS active(e.user) AND e.amount > 10".
func ParseExpr(src string) (Expr, error) { return lang.ParseExpr(src) }

// ParseRules parses a rule file into a compiled rule set.
func ParseRules(src string) (*RuleSet, error) { return rules.ParseSet(src) }

// State repository and reasoning.
type (
	// Store is the state repository (reachable via Engine.Store).
	Store = state.Store
	// StateDB is the bitemporal database interface over the state
	// repository: Find/List/Put/Delete/History with functional temporal
	// options (reachable via Engine.DB or Store.DB).
	StateDB = state.StateDB
	// DB is the in-memory StateDB implementation.
	DB = state.DB
	// ReadOpt configures a temporal read (AsOfValidTime,
	// AsOfTransactionTime, WithAttribute, AllVersions, DuringValidTime).
	ReadOpt = state.ReadOpt
	// WriteOpt configures a temporal write (WithValidTime,
	// WithEndValidTime, WithTransactionTime, WithSource, WithDerived).
	WriteOpt = state.WriteOpt
	// Log is an append-only record of store mutations (see WithLog).
	Log = state.Log
	// StoreStats summarizes store occupancy.
	StoreStats = state.Stats
	// ReadSpec is the pre-resolved, allocation-free form of a point-read
	// option list (see Store.FindSpec / Store.FindValue).
	ReadSpec = state.ReadSpec
	// BatchPut is one replace-semantics write in a Store.PutBatch group
	// commit (the micro-batch ingestion write path).
	BatchPut = state.BatchPut
	// StateSnapshot is an immutable handle over one consistent cut of the
	// store, pinned at a transaction-clock instant (Store.Snapshot).
	// Reads through it acquire no shard locks, so long analytical scans
	// never stall ingestion. (Named StateSnapshot because Snapshot is the
	// engine policy constant.)
	StateSnapshot = state.Snapshot
	// StateReader is the read-only temporal query surface shared by
	// Store, DB, and StateSnapshot; query executors evaluate against it.
	StateReader = state.Reader
	// CompactionPolicy schedules growth-triggered per-shard compaction
	// sweeps (Store.SetCompactionPolicy, or the engine's WithAutoCompact).
	CompactionPolicy = state.CompactionPolicy
	// DurableStore is the segment-backed durable state store behind
	// WithDurableDir (reachable via Engine.Durable, or standalone through
	// OpenDurableStore). Its point reads fall through RAM to durable
	// segment frames.
	DurableStore = segment.Store
	// DurableOption configures a durable directory (DurableFlushEvery).
	DurableOption = segment.Option
	// DurableInfo summarizes a durable directory (DurableStore.Info).
	DurableInfo = segment.Info
	// Degraded describes a durable store running in degraded mode after
	// a permanent (or retry-exhausted) disk failure: ingestion and RAM
	// reads continue, durability is suspended until Flush or Resume
	// succeeds (DurableStore.Degraded, Engine.Health).
	Degraded = segment.Degraded
	// Health is the engine's serving posture: nil Degraded and nil
	// DurableErr mean fully durable (Engine.Health).
	Health = core.Health
	// DurableRetryPolicy tunes how background flushes retry transient
	// disk errors before degrading (DurableRetry).
	DurableRetryPolicy = segment.RetryPolicy
	// Ontology holds class/property taxonomies and domain/range axioms.
	Ontology = reason.Ontology
	// Reasoner materializes implicit facts over the store.
	Reasoner = reason.Reasoner
	// HornRule is one user-defined derivation rule.
	HornRule = reason.HornRule
	// TriplePattern is one premise or conclusion of a HornRule.
	TriplePattern = reason.TriplePattern
	// Term is a variable or constant in a TriplePattern.
	Term = reason.Term
)

// NewStore returns a standalone state repository (engines create their
// own; use this for direct store experiments). Lineages are
// hash-partitioned across a GOMAXPROCS-scaled array of lock-striped
// shards, so unrelated keys never contend.
func NewStore() *Store { return state.NewStore() }

// NewStoreWithShards returns a state repository with a fixed shard count
// (rounded up to a power of two). 1 yields a single-lock store — the
// pre-sharding layout, useful as a contention baseline; <= 0 selects the
// GOMAXPROCS-scaled default.
func NewStoreWithShards(n int) *Store { return state.NewStoreWithShards(n) }

// OpenDurableStore opens (or initializes) a standalone durable segment
// store at dir, recovering any existing state: manifest, segment files,
// then the WAL tail. Engines do this themselves via WithDurableDir; use
// OpenDurableStore for direct store experiments that should survive the
// process.
func OpenDurableStore(dir string, opts ...DurableOption) (*DurableStore, error) {
	return segment.Open(dir, opts...)
}

// Temporal read options (see StateDB).

// AsOfValidTime selects the version valid at t in the modeled world.
func AsOfValidTime(t Instant) ReadOpt { return state.AsOfValidTime(t) }

// AsOfTransactionTime selects the versions believed at transaction time
// tt, hiding retroactive corrections recorded later.
func AsOfTransactionTime(tt Instant) ReadOpt { return state.AsOfTransactionTime(tt) }

// DuringValidTime restricts List to versions overlapping [from, to).
func DuringValidTime(from, to Instant) ReadOpt { return state.DuringValidTime(from, to) }

// WithAttribute scopes List to one attribute.
func WithAttribute(attr string) ReadOpt { return state.WithAttribute(attr) }

// AllVersions returns every version instead of one per key.
func AllVersions() ReadOpt { return state.AllVersions() }

// Temporal write options (see StateDB).

// WithValidTime sets the start of a write's valid interval; a past start
// makes the write a retroactive correction.
func WithValidTime(t Instant) WriteOpt { return state.WithValidTime(t) }

// WithEndValidTime bounds a write's valid interval.
func WithEndValidTime(end Instant) WriteOpt { return state.WithEndValidTime(end) }

// WithTransactionTime pins a write's transaction time (defaults to the
// store's transaction clock).
func WithTransactionTime(tt Instant) WriteOpt { return state.WithTransactionTime(tt) }

// WithSource labels the written version with a producing rule name.
func WithSource(source string) WriteOpt { return state.WithSource(source) }

// WithDerived marks the written version as reasoner-materialized.
func WithDerived() WriteOpt { return state.WithDerived() }

// NewLog wraps a writer in a mutation log (see WithLog and cmd/stateql).
func NewLog(w io.Writer) *Log { return state.NewLog(w) }

// CreateLog creates (truncating) a log file at path.
func CreateLog(path string) (*Log, error) { return state.CreateLog(path) }

// NewOntology returns an empty ontology.
func NewOntology() *Ontology { return reason.NewOntology() }

// NewReasoner builds a standalone reasoner over a store (engines attach
// their own via Engine.EnableReasoning).
func NewReasoner(st *Store, ont *Ontology) *Reasoner { return reason.NewReasoner(st, ont) }

// Var returns a variable term for Horn rules.
func Var(name string) Term { return reason.V(name) }

// Const returns a constant term for Horn rules.
func Const(v Value) Term { return reason.C(v) }

// Event patterns (CEP, usable in rule triggers via ON SEQ(...) and
// directly through the cep matcher).
type (
	// Pattern is a CEP situation declaration.
	Pattern = cep.Pattern
	// PatternMatch is one detected situation with interval semantics.
	PatternMatch = cep.Match
	// Matcher evaluates a pattern over a stream.
	Matcher = cep.Matcher
)

// NewMatcher compiles a pattern.
func NewMatcher(p Pattern) (*Matcher, error) { return cep.NewMatcher(p) }

// EventPattern matches any element of the stream.
func EventPattern(stream string) Pattern { return cep.Event(stream) }

// SequencePattern matches its sub-patterns in temporal order.
func SequencePattern(ps ...Pattern) Pattern { return cep.Sequence(ps...) }

// WithinPattern bounds a pattern's span.
func WithinPattern(p Pattern, d Instant) Pattern { return &cep.Within{P: p, D: d} }

// Subscriptions: push-based delivery of state deltas and emitted
// elements at watermark granularity (see DESIGN.md "Subscriptions").
type (
	// WatermarkBatch is everything one watermark advance closed: the
	// pinned snapshot, the state changes, and the emitted elements.
	WatermarkBatch = core.WatermarkBatch
	// WatermarkHook observes watermark batches (Engine.OnWatermark).
	WatermarkHook = core.WatermarkHook
	// Broker fans watermark batches out to subscribers.
	Broker = subscribe.Broker
	// Subscriber is one registered subscription's receive handle.
	Subscriber = subscribe.Subscriber
	// SubscriptionFilter selects which changes and emissions a
	// subscriber receives, or carries a continuous query.
	SubscriptionFilter = subscribe.Filter
	// Delivery is one pushed update: a per-watermark delta batch, a
	// continuous-query result, or a resync snapshot.
	Delivery = subscribe.Delivery
	// DeliveryKind discriminates Delivery payloads.
	DeliveryKind = subscribe.Kind
	// SubOption configures one subscription.
	SubOption = subscribe.SubOption
	// BrokerMetrics reports broker-level fan-out counters.
	BrokerMetrics = subscribe.Metrics
)

// Delivery kinds.
const (
	// DeliveryDeltas is an ordinary per-watermark delta batch.
	DeliveryDeltas = subscribe.Deltas
	// DeliveryResync marks a slow consumer's catch-up snapshot.
	DeliveryResync = subscribe.Resync
	// DeliveryNotice carries an operational event — durability entering
	// or leaving degraded mode — in the Delivery's Note field.
	DeliveryNotice = subscribe.Notice
)

// NewBroker taps the engine's watermark hook and returns a broker ready
// to accept subscriptions. Create it before ingestion starts; close it
// to terminate every subscriber.
func NewBroker(e *Engine) *Broker { return subscribe.NewBroker(e) }

// WithQueueLen sets a subscription's bounded delivery-queue length.
func WithQueueLen(n int) SubOption { return subscribe.WithQueueLen(n) }

// ResumeFrom resumes a subscription from a prior watermark cursor: a
// stale cursor yields an immediate resync snapshot before live deltas.
func ResumeFrom(cursor Instant) SubOption { return subscribe.ResumeFrom(cursor) }
