package statestream_test

// Benchmark harness: one testing.B benchmark per experiment of DESIGN.md
// §4 (E1-E10), each delegating to the same internal/bench function that
// cmd/benchrunner uses to regenerate the EXPERIMENTS.md tables, plus
// micro-benchmarks for the load-bearing substrates (state store, rule
// firing, window evaluation, query language, reasoner).
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	statestream "repro"
	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// benchScale keeps the experiment benchmarks fast enough to iterate; the
// recorded EXPERIMENTS.md tables come from cmd/benchrunner at scale 1.
const benchScale = 0.25

func runExperiment(b *testing.B, run func(float64) *metrics.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab := run(benchScale)
		if len(tab.Rows()) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkE1SessionScoping(b *testing.B)   { runExperiment(b, bench.E1SessionScoping) }
func BenchmarkE2Contradictions(b *testing.B)   { runExperiment(b, bench.E2Contradictions) }
func BenchmarkE3Reclassification(b *testing.B) { runExperiment(b, bench.E3Reclassification) }
func BenchmarkE4StateQuery(b *testing.B)       { runExperiment(b, bench.E4StateQuery) }
func BenchmarkE5StateGating(b *testing.B)      { runExperiment(b, bench.E5StateGating) }
func BenchmarkE6Reasoning(b *testing.B)        { runExperiment(b, bench.E6Reasoning) }
func BenchmarkE7StateStore(b *testing.B)       { runExperiment(b, bench.E7StateStore) }
func BenchmarkE8Semantics(b *testing.B)        { runExperiment(b, bench.E8Semantics) }
func BenchmarkE9WindowBaselines(b *testing.B)  { runExperiment(b, bench.E9WindowBaselines) }
func BenchmarkE10RuleOverhead(b *testing.B)    { runExperiment(b, bench.E10RuleOverhead) }

// --- Substrate micro-benchmarks ---------------------------------------

func BenchmarkStorePut(b *testing.B) {
	st := statestream.NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%04d", i%1000)
		if err := st.Put(key, "v", statestream.Int(int64(i)), statestream.Instant(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreCurrentLookup(b *testing.B) {
	st := statestream.NewStore()
	for i := 0; i < 100_000; i++ {
		st.Put(fmt.Sprintf("k%04d", i%1000), "v", statestream.Int(int64(i)), statestream.Instant(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Current(fmt.Sprintf("k%04d", i%1000), "v")
	}
}

func BenchmarkStoreAsOfLookup(b *testing.B) {
	st := statestream.NewStore()
	for i := 0; i < 100_000; i++ {
		st.Put(fmt.Sprintf("k%04d", i%1000), "v", statestream.Int(int64(i)), statestream.Instant(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ValidAt(fmt.Sprintf("k%04d", i%1000), "v", statestream.Instant(i%100_000))
	}
}

func BenchmarkRuleFiring(b *testing.B) {
	engine := statestream.New(statestream.StateFirst)
	if err := engine.DeployRules(`
RULE position ON RoomEntry AS r THEN REPLACE position(r.visitor) = r.room`); err != nil {
		b.Fatal(err)
	}
	cfg := workload.DefaultBuilding()
	els, _ := workload.Building(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el := els[i%len(els)]
		// Keep timestamps monotonic across laps by shifting each lap.
		shifted := *el
		shifted.Timestamp += statestream.Instant(i/len(els)) * (els[len(els)-1].Timestamp + 1)
		if err := engine.Process(statestream.ElementMsg(&shifted)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowSession(b *testing.B) {
	cfg := workload.DefaultClickstream()
	els, _ := workload.Clickstream(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w := statestream.NewSessionWindow(statestream.Instant(30*time.Minute),
			func(e *statestream.Element) string { return e.MustGet("visitor").MustString() })
		b.StartTimer()
		for _, el := range els {
			w.Observe(el)
			w.AdvanceTo(el.Timestamp)
		}
	}
}

func BenchmarkQueryLanguage(b *testing.B) {
	engine := statestream.New(statestream.StateFirst)
	for i := 0; i < 10_000; i++ {
		engine.Store().Put(fmt.Sprintf("e%04d", i%500), "position",
			statestream.String(fmt.Sprintf("room%d", i%10)), statestream.Instant(i))
	}
	engine.Process(statestream.WatermarkMsg(10_001))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Query("SELECT value, count(*) FROM position GROUP BY value"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReasonerMaterialize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := statestream.NewStore()
		ont := statestream.NewOntology()
		for d := 0; d < 6; d++ {
			for f := 0; f < 2; f++ {
				if err := ont.SubClassOf(fmt.Sprintf("c%d_%d", d+1, f), fmt.Sprintf("c%d_0", d)); err != nil {
					b.Fatal(err)
				}
			}
		}
		reasoner := statestream.NewReasoner(st, ont)
		for p := 0; p < 200; p++ {
			st.Put(fmt.Sprintf("p%03d", p), "type",
				statestream.String(fmt.Sprintf("c6_%d", p%2)), statestream.Instant(p))
		}
		b.StartTimer()
		reasoner.Materialize()
	}
}
