// Command clickstream reproduces the paper's §1 e-commerce monitoring use
// case: "the system should trace a user from the moment when she enters
// the Web site to the moment when she leaves". Session boundaries are
// data-dependent, so fixed windows either split sessions or waste
// resources; here the boundaries live in the state repository, updated by
// Enter/Leave rules, and an expensive per-click pipeline runs only for
// users whose sessions are open (state gating, §5).
package main

import (
	"fmt"
	"log"
	"time"

	statestream "repro"
)

var clickSchema = statestream.NewSchema(
	statestream.Field{Name: "user", Kind: statestream.KindString},
	statestream.Field{Name: "page", Kind: statestream.KindString},
)

func ev(stream string, at time.Duration, user, page string) *statestream.Element {
	return statestream.NewElement(stream, statestream.Instant(at),
		statestream.NewTuple(clickSchema, statestream.String(user), statestream.String(page)))
}

func main() {
	engine := statestream.New(statestream.StateFirst)

	// State management rules: session lifecycle is explicit state.
	if err := engine.DeployRules(`
RULE open ON Enter AS x
THEN REPLACE active(x.user) = true,
     REPLACE entered(x.user) = now()

RULE close ON Leave AS x WHEN EXISTS active(x.user)
THEN EMIT SessionEnd(user = x.user, duration = now() - entered(x.user)),
     RETRACT active(x.user),
     RETRACT entered(x.user)`); err != nil {
		log.Fatal(err)
	}

	// Stream processing: per-user click counts over sliding windows, but
	// only for clicks inside an open session — everything else is noise
	// (crawlers, stale tabs) the gate discards before the window buffers
	// it.
	gate, err := statestream.ParseExpr("EXISTS active(e.user)")
	if err != nil {
		log.Fatal(err)
	}
	counts := statestream.NewContinuousQuery("ClickCounts", "Click",
		statestream.NewTumblingTime(statestream.Instant(time.Minute)), false,
		statestream.IStream,
		statestream.Aggregate([]string{"user"},
			statestream.AggSpec{Func: statestream.Count, As: "clicks"}),
	)
	if err := engine.DeployProcessor(&statestream.Processor{
		Name:   "clickcounts",
		Source: "Click",
		Gate:   gate,
		Op:     counts,
	}); err != nil {
		log.Fatal(err)
	}

	els := []*statestream.Element{
		ev("Click", 5*time.Second, "crawler", "/robots.txt"), // no session: gated
		ev("Enter", 10*time.Second, "ann", "/"),
		ev("Click", 20*time.Second, "ann", "/shoes"),
		ev("Click", 30*time.Second, "ann", "/shoes/red"),
		ev("Enter", 35*time.Second, "bob", "/"),
		ev("Click", 40*time.Second, "bob", "/books"),
		ev("Leave", 50*time.Second, "ann", "/checkout"),
		ev("Click", 55*time.Second, "ann", "/late"), // session over: gated
	}
	if err := engine.Run(statestream.FromElements(els)); err != nil {
		log.Fatal(err)
	}
	if err := engine.Process(statestream.WatermarkMsg(statestream.Instant(time.Minute))); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Session lifecycle events (from state management rules):")
	for _, e := range engine.Emitted() {
		d := time.Duration(e.MustGet("duration").MustInt())
		fmt.Printf("  %s: user=%s duration=%s\n", e.Stream, e.MustGet("user").MustString(), d)
	}

	fmt.Println("\nPer-user click counts (only in-session clicks were processed):")
	for _, e := range engine.Output("clickcounts") {
		fmt.Printf("  %s: %d clicks\n", e.MustGet("user").MustString(), e.MustGet("clicks").MustInt())
	}

	stats := engine.Stats()[0]
	fmt.Printf("\nGate effectiveness: %d clicks seen, %d gated away, %d processed\n",
		stats.Seen, stats.Gated, stats.Processed)

	res, err := engine.Query("SELECT entity, value FROM active")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nStill active (bob never left):")
	fmt.Print(res)
}
