// Command ecommerce reproduces the paper's §3.1 case study: a decision
// support tool where sales trends must be interpreted against the current
// product classification, which "is managed by a different division of
// the company" and changes over time. Reclassification events feed state
// management rules; the trend query enriches each sale from the state; an
// ontology-backed reasoner answers taxonomy queries (which products are,
// transitively, "media"?).
package main

import (
	"fmt"
	"log"
	"time"

	statestream "repro"
)

var (
	saleSchema = statestream.NewSchema(
		statestream.Field{Name: "product", Kind: statestream.KindString},
		statestream.Field{Name: "amount", Kind: statestream.KindFloat},
	)
	catalogSchema = statestream.NewSchema(
		statestream.Field{Name: "product", Kind: statestream.KindString},
		statestream.Field{Name: "class", Kind: statestream.KindString},
	)
)

func sale(at time.Duration, product string, amount float64) *statestream.Element {
	return statestream.NewElement("Sale", statestream.Instant(at),
		statestream.NewTuple(saleSchema, statestream.String(product), statestream.Float(amount)))
}

func reclassify(at time.Duration, product, class string) *statestream.Element {
	return statestream.NewElement("Reclassify", statestream.Instant(at),
		statestream.NewTuple(catalogSchema, statestream.String(product), statestream.String(class)))
}

func main() {
	engine := statestream.New(statestream.StateFirst)

	// The catalogue division's updates become state; the type attribute
	// also feeds the reasoner below.
	if err := engine.DeployRules(`
RULE classify ON Reclassify AS c
THEN REPLACE class(c.product) = c.class,
     REPLACE type(c.product) = c.class`); err != nil {
		log.Fatal(err)
	}

	// Trend query: hourly revenue per class, where class is read from the
	// state at sale time.
	trend := statestream.NewContinuousQuery("Trend", "Sale",
		statestream.NewTumblingTime(statestream.Instant(time.Hour)), false,
		statestream.IStream,
		statestream.Aggregate([]string{"class"},
			statestream.AggSpec{Func: statestream.Sum, Field: "amount", As: "revenue"},
			statestream.AggSpec{Func: statestream.Count, As: "sales"}),
	)
	if err := engine.DeployProcessor(&statestream.Processor{
		Name:   "trend",
		Source: "Sale",
		Enrich: []statestream.EnrichSpec{{Attr: "class", EntityField: "product", As: "class"}},
		Op:     trend,
	}); err != nil {
		log.Fatal(err)
	}

	// Product taxonomy as an ontology (the §3.1 "taxonomy to organize the
	// products ... and to automatically derive sub-classes relations").
	ont := statestream.NewOntology()
	for _, sc := range [][2]string{
		{"novel", "books"}, {"cookbook", "books"},
		{"books", "media"}, {"vinyl", "media"},
	} {
		if err := ont.SubClassOf(sc[0], sc[1]); err != nil {
			log.Fatal(err)
		}
	}
	engine.EnableReasoning(ont)

	els := []*statestream.Element{
		reclassify(0, "p1", "novel"),
		reclassify(0, "p2", "cookbook"),
		reclassify(0, "p3", "vinyl"),
		sale(10*time.Minute, "p1", 20),
		sale(20*time.Minute, "p2", 35),
		sale(30*time.Minute, "p3", 15),
		reclassify(40*time.Minute, "p1", "vinyl"), // catalogue change mid-window
		sale(50*time.Minute, "p1", 25),
	}
	if err := engine.Run(statestream.FromElements(els)); err != nil {
		log.Fatal(err)
	}
	if err := engine.Process(statestream.WatermarkMsg(statestream.Instant(time.Hour))); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Hourly revenue per classification (current at sale time):")
	for _, e := range engine.Output("trend") {
		fmt.Printf("  %-8s revenue=%6.2f sales=%d\n",
			e.MustGet("class").MustString(),
			e.MustGet("revenue").MustFloat(),
			e.MustGet("sales").MustInt())
	}

	fmt.Println("\nCatalogue history of p1 (queryable state, §3.2):")
	res, err := engine.Query("SELECT value, start, end FROM class HISTORY WHERE entity = 'p1'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	fmt.Println("\nAll current media products (taxonomy inference):")
	res, err = engine.Query("SELECT entity FROM type WHERE value = 'media' WITH INFERENCE ORDER BY entity")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	fmt.Println("\nMedia products as of t=5m (historical + inference):")
	res, err = engine.Query(fmt.Sprintf(
		"SELECT entity FROM type ASOF %d WHERE value = 'media' WITH INFERENCE ORDER BY entity",
		statestream.Instant(5*time.Minute)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
}
