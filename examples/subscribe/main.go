// Command subscribe demonstrates push-based state access: instead of
// polling the repository with SELECT round-trips, clients register a
// subscription and the broker delivers state deltas, emitted alerts, and
// continuous-query results per watermark. A deliberately slow consumer
// shows the drop-and-resync contract: its backlog collapses into one
// resync delivery — a snapshot-pinned catch-up at an explicit
// transaction-time cut — rather than an unbounded queue of stale deltas.
package main

import (
	"fmt"
	"log"
	"time"

	statestream "repro"
)

func main() {
	engine := statestream.New(statestream.WithPolicy(statestream.StateFirst))
	err := engine.DeployRules(`
RULE track ON Reading AS r
THEN REPLACE temperature(r.sensor) = r.celsius

RULE spike ON Reading AS r WHERE r.celsius > 25.0
THEN EMIT Alert(sensor = r.sensor, celsius = r.celsius)`)
	if err != nil {
		log.Fatal(err)
	}

	// The broker taps the engine's watermark hook; create it (and the
	// subscriptions) before ingestion starts.
	broker := statestream.NewBroker(engine)

	kitchen, err := broker.Subscribe(statestream.SubscriptionFilter{Entity: "kitchen"})
	if err != nil {
		log.Fatal(err)
	}
	alerts, err := broker.Subscribe(statestream.SubscriptionFilter{Stream: "Alert"})
	if err != nil {
		log.Fatal(err)
	}
	watcher, err := broker.Subscribe(statestream.SubscriptionFilter{
		Query: "SELECT entity, value FROM temperature ORDER BY entity",
	})
	if err != nil {
		log.Fatal(err)
	}
	// A match-all subscriber with a tiny queue that never reads during
	// ingestion: it will overflow and be marked lost.
	laggard, err := broker.Subscribe(statestream.SubscriptionFilter{},
		statestream.WithQueueLen(1))
	if err != nil {
		log.Fatal(err)
	}

	schema := statestream.NewSchema(
		statestream.Field{Name: "sensor", Kind: statestream.KindString},
		statestream.Field{Name: "celsius", Kind: statestream.KindFloat},
	)
	reading := func(ts int64, sensor string, c float64) *statestream.Element {
		return statestream.NewElement("Reading", statestream.FromMillis(ts),
			statestream.NewTuple(schema, statestream.String(sensor), statestream.Float(c)))
	}

	els := []*statestream.Element{
		reading(1000, "kitchen", 19.5),
		reading(2000, "cellar", 12.0),
		reading(3000, "kitchen", 27.5), // spike: emits an Alert
		reading(4000, "cellar", 13.0),
	}
	// A watermark after every reading: each one closes a batch and the
	// broker fans its deltas out.
	if err := engine.Run(statestream.WithPeriodicWatermarks(els, statestream.FromMillis(1000))); err != nil {
		log.Fatal(err)
	}

	// Dispatch is asynchronous; wait for the broker to settle before
	// draining (a live client would just keep Recv-ing).
	for prev := uint64(0); ; {
		m := broker.Metrics()
		if done := m.Batches + m.SkippedBatches; done == prev && done > 0 {
			break
		} else {
			prev = done
		}
		time.Sleep(50 * time.Millisecond)
	}

	fmt.Println("kitchen subscriber (entity filter):")
	for d, ok := kitchen.TryRecv(); ok; d, ok = kitchen.TryRecv() {
		for _, ch := range d.Changes {
			fmt.Printf("  wm=%s %s %s\n", d.Watermark, ch.Kind, ch.Fact)
		}
	}

	fmt.Println("alert subscriber (stream filter):")
	for d, ok := alerts.TryRecv(); ok; d, ok = alerts.TryRecv() {
		for _, el := range d.Emitted {
			fmt.Printf("  wm=%s %s\n", d.Watermark, el)
		}
	}

	fmt.Println("continuous-query subscriber (pushed only on change):")
	for d, ok := watcher.TryRecv(); ok; d, ok = watcher.TryRecv() {
		fmt.Printf("  wm=%s rows=%d\n", d.Watermark, len(d.Result.Rows))
	}

	// The laggard reads at last: its queue overflowed, so instead of a
	// backlog it gets one resync — the full filtered state at a pinned
	// transaction-time cut.
	fmt.Println("laggard (queue overflowed while not reading):")
	for d, ok := laggard.TryRecv(); ok; d, ok = laggard.TryRecv() {
		if d.Kind == statestream.DeliveryResync {
			fmt.Printf("  RESYNC at wm=%s cut=%s: %d facts\n", d.Watermark, d.Cut, len(d.State))
			for _, f := range d.State {
				fmt.Printf("    %s\n", f)
			}
		} else {
			fmt.Printf("  wm=%s (%d changes)\n", d.Watermark, len(d.Changes))
		}
	}

	broker.Close()
}
