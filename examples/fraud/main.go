// Command fraud demonstrates the credit-card fraud-detection domain the
// paper's introduction lists among its motivating applications, combining
// three of the model's mechanisms:
//
//   - a pattern-triggered state management rule (§3.3: transitions
//     "determined by multiple streaming elements"): two card-present
//     transactions in different cities within 30 minutes flag the card;
//   - a bounded ASSERT: the flag expires automatically after two hours
//     (its time of validity is explicit state, not a timer);
//   - a state gate: an expensive scoring pipeline runs only for flagged
//     cards.
package main

import (
	"fmt"
	"log"
	"time"

	statestream "repro"
)

var txSchema = statestream.NewSchema(
	statestream.Field{Name: "card", Kind: statestream.KindString},
	statestream.Field{Name: "city", Kind: statestream.KindString},
	statestream.Field{Name: "amount", Kind: statestream.KindFloat},
)

func tx(at time.Duration, card, city string, amount float64) *statestream.Element {
	return statestream.NewElement("Tx", statestream.Instant(at),
		statestream.NewTuple(txSchema,
			statestream.String(card), statestream.String(city), statestream.Float(amount)))
}

func main() {
	engine := statestream.New(statestream.StateFirst)

	// The WHEN guard keeps repeated matches for an already-flagged card
	// from re-asserting an overlapping validity interval.
	if err := engine.DeployRules(`
RULE impossible_travel
ON SEQ(Tx AS a, Tx AS b) WITHIN 30m
WHERE a.card = b.card AND a.city != b.city
WHEN NOT EXISTS flagged(a.card)
THEN ASSERT flagged(a.card) = true UNTIL now() + 2h,
     EMIT Flag(card = a.card, from = a.city, to = b.city)`); err != nil {
		log.Fatal(err)
	}

	gate, err := statestream.ParseExpr("EXISTS flagged(e.card)")
	if err != nil {
		log.Fatal(err)
	}
	scoring := statestream.NewContinuousQuery("Scores", "Tx",
		statestream.NewSlidingTime(
			statestream.Instant(time.Hour), statestream.Instant(10*time.Minute)),
		false, statestream.IStream,
		statestream.Aggregate([]string{"card"},
			statestream.AggSpec{Func: statestream.Sum, Field: "amount", As: "exposure"},
			statestream.AggSpec{Func: statestream.Count, As: "txs"}),
	)
	if err := engine.DeployProcessor(&statestream.Processor{
		Name: "scoring", Source: "Tx", Gate: gate, Op: scoring,
	}); err != nil {
		log.Fatal(err)
	}

	els := []*statestream.Element{
		tx(0*time.Minute, "card1", "zurich", 40),
		tx(5*time.Minute, "card2", "milan", 15),
		tx(10*time.Minute, "card1", "venice", 900), // 10 min Zurich→Venice: flagged
		tx(20*time.Minute, "card1", "venice", 1200),
		tx(25*time.Minute, "card2", "milan", 20),
		tx(40*time.Minute, "card1", "venice", 60),
	}
	msgs := statestream.WithPeriodicWatermarks(els, statestream.Instant(10*time.Minute))
	if err := engine.Run(msgs); err != nil {
		log.Fatal(err)
	}
	if err := engine.Process(statestream.WatermarkMsg(statestream.Instant(2 * time.Hour))); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Flags raised (pattern-triggered state transitions):")
	for _, f := range engine.Emitted() {
		fmt.Printf("  %s: %s %s→%s\n", f.Stream, f.MustGet("card").MustString(),
			f.MustGet("from").MustString(), f.MustGet("to").MustString())
	}

	fmt.Println("\nScoring ran only for flagged cards:")
	seen := map[string]bool{}
	for _, s := range engine.Output("scoring") {
		card := s.MustGet("card").MustString()
		if !seen[card] {
			seen[card] = true
			fmt.Printf("  %s: exposure=%.0f over %d txs (first window)\n",
				card, s.MustGet("exposure").MustFloat(), s.MustGet("txs").MustInt())
		}
	}
	stats := engine.Stats()[0]
	fmt.Printf("\nGate: %d transactions seen, %d scored, %d skipped\n",
		stats.Seen, stats.Processed, stats.Gated)

	fmt.Println("\nFlag validity is explicit state (auto-expires):")
	res, err := engine.Query("SELECT entity, value, start, end FROM flagged HISTORY")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	res, err = engine.Query(fmt.Sprintf(
		"SELECT entity FROM flagged ASOF %d", statestream.Instant(3*time.Hour)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFlagged cards three hours in: %d (flag expired on its own)\n", len(res.Rows))
}
