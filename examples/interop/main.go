// Command interop demonstrates the §3.2 interoperability benefit:
// "queryable state can promote interoperability, since stream processing
// systems can expose their state and query the state of other systems."
//
// Two engines run here. The *security* engine tracks visitor positions
// from badge events and exposes its state repository over HTTP. The
// *facilities* engine processes climate-sensor readings and consults the
// security engine's remote state to process only readings from occupied
// rooms — one system's stream processing conditioned on another system's
// state, across a network boundary.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	statestream "repro"
	"repro/internal/server"
)

var (
	entrySchema = statestream.NewSchema(
		statestream.Field{Name: "visitor", Kind: statestream.KindString},
		statestream.Field{Name: "room", Kind: statestream.KindString},
	)
	readingSchema = statestream.NewSchema(
		statestream.Field{Name: "room", Kind: statestream.KindString},
		statestream.Field{Name: "celsius", Kind: statestream.KindFloat},
	)
)

func main() {
	// --- System A: security engine, tracking positions.
	security := statestream.New(statestream.StateFirst)
	if err := security.DeployRules(`
RULE position ON RoomEntry AS r THEN REPLACE position(r.visitor) = r.room
RULE occupy  ON RoomEntry AS r THEN REPLACE occupied(r.room) = true`); err != nil {
		log.Fatal(err)
	}
	entry := func(at time.Duration, visitor, room string) *statestream.Element {
		return statestream.NewElement("RoomEntry", statestream.Instant(at),
			statestream.NewTuple(entrySchema, statestream.String(visitor), statestream.String(room)))
	}
	if err := security.Run(statestream.FromElements([]*statestream.Element{
		entry(1*time.Minute, "ann", "lab"),
		entry(2*time.Minute, "bob", "server-room"),
	})); err != nil {
		log.Fatal(err)
	}

	// Expose system A's state over HTTP (httptest stands in for a real
	// listener so the example is self-contained).
	srv := httptest.NewServer(server.New(security.Store(), nil))
	defer srv.Close()
	fmt.Printf("security engine state served at %s\n", srv.URL)

	// --- System B: facilities engine, consuming system A's state.
	remote := &server.RemoteState{Client: server.NewClient(srv.URL)}

	facilities := statestream.New(statestream.StateFirst)
	if err := facilities.DeployProcessor(&statestream.Processor{
		Name:   "climate",
		Source: "Reading",
	}); err != nil {
		log.Fatal(err)
	}
	reading := func(at time.Duration, room string, c float64) *statestream.Element {
		return statestream.NewElement("Reading", statestream.Instant(at),
			statestream.NewTuple(readingSchema, statestream.String(room), statestream.Float(c)))
	}
	readings := []*statestream.Element{
		reading(3*time.Minute, "lab", 21.5),
		reading(3*time.Minute, "basement", 14.0), // unoccupied: skip
		reading(4*time.Minute, "server-room", 31.0),
	}

	fmt.Println("\nfacilities engine, filtering by remote occupancy:")
	for _, r := range readings {
		room, _ := r.Get("room")
		if _, occupied := remote.Lookup("occupied", room); !occupied {
			fmt.Printf("  %-12s skipped (remote state: unoccupied)\n", room.MustString())
			continue
		}
		if err := facilities.Process(statestream.ElementMsg(r)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s processed: %.1f°C\n", room.MustString(), r.MustGet("celsius").MustFloat())
	}

	// System B can also run full temporal queries against system A.
	client := server.NewClient(srv.URL)
	res, err := client.Query("SELECT entity, value FROM position ORDER BY entity")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nremote query — who is where (system A's state, from system B):")
	fmt.Print(res)

	res, err = client.Query(fmt.Sprintf(
		"SELECT entity FROM position ASOF %d", statestream.Instant(90*time.Second)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nremote historical query — present at t=90s: %d visitor(s)\n", len(res.Rows))
}
