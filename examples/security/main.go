// Command security reproduces the paper's §1 building-monitoring use
// case: sensors signal an event whenever a visitor enters a room. A fixed
// five-minute window concludes that a visitor who moved through several
// rooms is in all of them simultaneously; the explicit-state engine's
// REPLACE rule keeps exactly one valid position per visitor ("the most
// recent position invalidates and updates any previous position").
//
// The program runs both systems on the same event sequence and prints the
// conclusions each draws, then demonstrates a pattern-triggered rule
// (tailgating detection) and historical queries.
package main

import (
	"fmt"
	"log"
	"time"

	statestream "repro"
)

var schema = statestream.NewSchema(
	statestream.Field{Name: "visitor", Kind: statestream.KindString},
	statestream.Field{Name: "room", Kind: statestream.KindString},
)

func entry(at time.Duration, visitor, room string) *statestream.Element {
	return statestream.NewElement("RoomEntry", statestream.Instant(at),
		statestream.NewTuple(schema, statestream.String(visitor), statestream.String(room)))
}

func main() {
	// One visitor walks through three rooms within five minutes; the two
	// visitors' event streams are merged in timestamp order.
	mallory := []*statestream.Element{
		entry(0*time.Minute, "mallory", "lobby"),
		entry(1*time.Minute, "mallory", "lab"),
		entry(3*time.Minute, "mallory", "vault"),
	}
	trent := []*statestream.Element{
		entry(2*time.Minute, "trent", "lobby"),
	}
	els := statestream.MergeSorted(mallory, trent)

	windowConclusions(els)
	stateConclusions(els)
	tailgatingPattern()
}

// windowConclusions shows the window paradigm: everything in the window
// is treated as valid simultaneously.
func windowConclusions(els []*statestream.Element) {
	w := statestream.NewTumblingTime(statestream.Instant(5 * time.Minute))
	for _, el := range els {
		w.Observe(el)
	}
	fmt.Println("Window paradigm (5m window) concludes:")
	for _, pane := range w.AdvanceTo(statestream.Instant(5 * time.Minute)) {
		rooms := map[string][]string{}
		for _, el := range pane.Elements {
			v := el.MustGet("visitor").MustString()
			rooms[v] = append(rooms[v], el.MustGet("room").MustString())
		}
		for v, rs := range rooms {
			fmt.Printf("  %s is in %v — %d rooms at once!\n", v, rs, len(rs))
		}
	}
}

// stateConclusions runs the explicit-state engine on the same stream.
func stateConclusions(els []*statestream.Element) {
	engine := statestream.New(statestream.WithPolicy(statestream.StateFirst))
	if err := engine.DeployRules(`
RULE position ON RoomEntry AS r
THEN REPLACE position(r.visitor) = r.room`); err != nil {
		log.Fatal(err)
	}
	if err := engine.Run(statestream.FromElements(els)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nExplicit state concludes (current):")
	res, err := engine.Query("SELECT entity, value FROM position ORDER BY entity")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	fmt.Println("\nAnd can answer historical questions — who was where at t=2m?")
	res, err = engine.Query(fmt.Sprintf(
		"SELECT entity, value FROM position ASOF %d ORDER BY entity",
		statestream.Instant(2*time.Minute)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	fmt.Println("\nFull movement history of mallory:")
	res, err = engine.Query("SELECT value, start, end FROM position HISTORY WHERE entity = 'mallory'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	// Security review at t=10m: the lab badge reader was offline — mallory
	// was actually in the server room between t=1m and t=3m. The
	// bitemporal StateDB records the correction without destroying the
	// original record, so the audit trail keeps both timelines.
	err = engine.DB().Put("mallory", "position", statestream.String("serverroom"),
		statestream.WithValidTime(statestream.Instant(1*time.Minute)),
		statestream.WithEndValidTime(statestream.Instant(3*time.Minute)),
		statestream.WithTransactionTime(statestream.Instant(10*time.Minute)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nCorrected: where was mallory at t=2m?")
	res, err = engine.Query(fmt.Sprintf(
		"SELECT value FROM position ASOF %d WHERE entity = 'mallory'",
		statestream.Instant(2*time.Minute)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	fmt.Println("\nAudit: what did the system believe at t=5m about t=2m?")
	res, err = engine.Query(fmt.Sprintf(
		"SELECT value FROM position ASOF %d SYSTEM TIME ASOF %d WHERE entity = 'mallory'",
		statestream.Instant(2*time.Minute), statestream.Instant(5*time.Minute)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	fmt.Println("\nAudit trail (every record, superseded ones included):")
	for _, f := range engine.DB().History("mallory", "position", statestream.AllVersions()) {
		marker := ""
		if f.Superseded() {
			marker = fmt.Sprintf("  [superseded at %s]", f.SupersededAt)
		}
		fmt.Printf("  %-10s %s recorded %s%s\n", f.Value, f.Validity, f.RecordedAt, marker)
	}
}

// tailgatingPattern shows a multi-element state management rule (§3.3:
// "a state transition ... determined by multiple streaming elements"):
// two badge events on the same door within 10 seconds raise an alert and
// flag the door in the state.
func tailgatingPattern() {
	engine := statestream.New(statestream.StateFirst)
	if err := engine.DeployRules(`
RULE tailgate
ON SEQ(Badge AS a, Badge AS b) WITHIN 10s
WHERE a.room = b.room AND a.visitor != b.visitor
THEN REPLACE suspicious(a.room) = true,
     EMIT Alert(door = a.room, first = a.visitor, second = b.visitor)`); err != nil {
		log.Fatal(err)
	}
	badge := func(at time.Duration, visitor, door string) *statestream.Element {
		return statestream.NewElement("Badge", statestream.Instant(at),
			statestream.NewTuple(schema, statestream.String(visitor), statestream.String(door)))
	}
	els := []*statestream.Element{
		badge(0, "ann", "door1"),
		badge(4*time.Second, "bob", "door1"), // tailgates ann
		badge(30*time.Second, "cat", "door1"),
	}
	if err := engine.Run(statestream.FromElements(els)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTailgating alerts (pattern-triggered rule):")
	for _, alert := range engine.Emitted() {
		fmt.Printf("  %s: %s then %s on %s\n", alert.Stream,
			alert.MustGet("first").MustString(),
			alert.MustGet("second").MustString(),
			alert.MustGet("door").MustString())
	}
	res, err := engine.Query("SELECT entity, value FROM suspicious")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSuspicious doors in state:")
	fmt.Print(res)
}
