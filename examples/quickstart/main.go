// Command quickstart is the smallest end-to-end use of the library: a
// state management rule turns a stream of temperature readings into
// explicit state, and the state is queried on demand — its current
// values, its history, and (after a retroactive correction through the
// bitemporal StateDB API) the belief the system held before the
// correction was recorded.
package main

import (
	"fmt"
	"log"

	statestream "repro"
)

func main() {
	engine := statestream.New(statestream.WithPolicy(statestream.StateFirst))

	// One state management rule: every reading replaces the sensor's
	// current temperature. The previous value is not lost — it stays in
	// the repository with its time of validity closed.
	err := engine.DeployRules(`
RULE track ON Reading AS r
THEN REPLACE temperature(r.sensor) = r.celsius`)
	if err != nil {
		log.Fatal(err)
	}

	schema := statestream.NewSchema(
		statestream.Field{Name: "sensor", Kind: statestream.KindString},
		statestream.Field{Name: "celsius", Kind: statestream.KindFloat},
	)
	reading := func(ts int64, sensor string, c float64) *statestream.Element {
		return statestream.NewElement("Reading", statestream.FromMillis(ts),
			statestream.NewTuple(schema, statestream.String(sensor), statestream.Float(c)))
	}

	els := []*statestream.Element{
		reading(1000, "kitchen", 19.5),
		reading(2000, "cellar", 12.0),
		reading(3000, "kitchen", 21.0),
		reading(4000, "cellar", 12.5),
	}
	if err := engine.Run(statestream.FromElements(els)); err != nil {
		log.Fatal(err)
	}

	// Current state.
	res, err := engine.Query("SELECT entity, value FROM temperature ORDER BY entity")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Current temperatures:")
	fmt.Print(res)

	// Historical state: what did the kitchen read at t=2.5s?
	res, err = engine.Query(fmt.Sprintf(
		"SELECT value FROM temperature ASOF %d WHERE entity = 'kitchen'",
		statestream.FromMillis(2500)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nKitchen at t=2.5s:")
	fmt.Print(res)

	// Full version history.
	res, err = engine.Query("SELECT entity, value, start, end FROM temperature HISTORY ORDER BY entity")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHistory:")
	fmt.Print(res)

	// The kitchen sensor turns out to have been miscalibrated between
	// t=1s and t=3s. Correct the record retroactively: the bitemporal
	// store supersedes the affected versions instead of destroying them.
	err = engine.DB().Put("kitchen", "temperature", statestream.Float(18.0),
		statestream.WithValidTime(statestream.FromMillis(1000)),
		statestream.WithEndValidTime(statestream.FromMillis(3000)),
		statestream.WithTransactionTime(statestream.FromMillis(10000)))
	if err != nil {
		log.Fatal(err)
	}

	// Default reads see the corrected timeline...
	res, err = engine.Query(fmt.Sprintf(
		"SELECT value FROM temperature ASOF %d WHERE entity = 'kitchen'",
		statestream.FromMillis(2500)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nKitchen at t=2.5s after the correction:")
	fmt.Print(res)

	// ...while SYSTEM TIME ASOF recovers what was believed before the
	// correction was recorded at t=10s.
	res, err = engine.Query(fmt.Sprintf(
		"SELECT value FROM temperature ASOF %d SYSTEM TIME ASOF %d WHERE entity = 'kitchen'",
		statestream.FromMillis(2500), statestream.FromMillis(5000)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nKitchen at t=2.5s as believed at t=5s (pre-correction):")
	fmt.Print(res)

	// A query issued repeatedly is worth preparing once: the text is
	// parsed and planned a single time (range predicates pushed into a
	// partitioned gather, pruned by the value-envelope index), and each
	// Exec pins a fresh snapshot. Explain shows the physical plan.
	pq, err := engine.Prepare("SELECT entity, value FROM temperature WHERE value > 15 ORDER BY entity")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPlan: pushed=%v bounds=%q index=%v\n",
		pq.Explain().PushedPredicates, pq.Explain().ValueBounds, pq.Explain().AttributeIndex)
	res, err = pq.Exec()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Rooms above 15°C:")
	fmt.Print(res)
}
